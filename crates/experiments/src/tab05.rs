//! Table 5 — priority queueing lets unscheduled packets hog the shared
//! switch buffer and starve *scheduled* packets: a contrived 20-to-1 incast
//! of 400 KB messages on a single 100 G shared-buffer switch.

use aeolus_sim::units::{ms, Time};
use aeolus_stats::{f2, TextTable};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams};

use crate::report::Report;
use crate::runner::run_flows;
use crate::scale::Scale;
use crate::topos::many_to_one;

/// Shared buffer across all switch ports (enough for ~1.7 BDPs of the
/// incast, far less than 20 concurrent BDP bursts).
pub const SHARED_POOL_BYTES: u64 = 500_000;

/// (avg, max) FCT in µs for one scheme.
fn run_one(scheme: Scheme, senders: usize) -> (f64, f64) {
    let mut params = SchemeParams::new(0);
    params.port_buffer = SHARED_POOL_BYTES; // per-port cap = pool size
    params.shared_pool = Some(SHARED_POOL_BYTES);
    let mut h = SchemeBuilder::new(scheme).params(params).topology(many_to_one(senders + 1)).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..senders)
        .map(|i| FlowDesc {
            id: FlowId(i as u64 + 1),
            src: hosts[i + 1],
            dst: hosts[0],
            size: 400_000,
            start: (i as u64) * 100_000 as Time,
        })
        .collect();
    let out = run_flows(&mut h, &flows, ms(400));
    let mut fct = out.agg.fct_us();
    (fct.mean(), fct.max())
}

/// Run Table 5.
pub fn run(scale: Scale) -> Report {
    let senders = scale.count(5, 20, 20);
    let mut table = TextTable::new(vec!["scheme", "avg FCT (us)", "max FCT (us)"]);
    for (scheme, name) in [
        (Scheme::ExpressPassAeolus, "ExpressPass + Aeolus"),
        (Scheme::ExpressPassPrioQueue { rto: ms(10) }, "ExpressPass + Priority Queueing"),
    ] {
        let (avg, max) = run_one(scheme, senders);
        table.row(vec![name.to_string(), f2(avg), f2(max)]);
    }
    let mut r = Report::new();
    r.section(format!("Table 5: {senders}-to-1 incast, shared-buffer switch"), table);
    r.note("paper: 656/986us (Aeolus) vs 8694/10866us (priority queueing, ~10x worse)");
    r
}
