//! Table 3 — average FCT of ALL flows under eager Homa (20 µs RTO) vs
//! Homa+Aeolus across the four workloads (two-tier tree, 54% load).

use aeolus_sim::units::us;
use aeolus_stats::{f2, TextTable};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

use crate::report::Report;
use crate::runner::{run_workload, RunConfig};
use crate::scale::Scale;
use crate::topos::homa_two_tier;

/// Run Table 3.
pub fn run(scale: Scale) -> Report {
    let mut table = TextTable::new(vec![
        "scheme",
        "Web Server (us)",
        "Cache Follower (us)",
        "Web Search (us)",
        "Data Mining (us)",
    ]);
    for (scheme, name) in
        [(Scheme::HomaEager { rto: us(20) }, "Eager Homa"), (Scheme::HomaAeolus, "Homa + Aeolus")]
    {
        let mut row = vec![name.to_string()];
        for w in Workload::ALL {
            let mut cfg = RunConfig::new(scheme, homa_two_tier(scale), w);
            cfg.load = 0.54;
            cfg.n_flows = scale.flows(50, 600, 3000);
            cfg.seed = 33;
            let out = run_workload(&cfg);
            row.push(f2(out.agg.fct_us().mean()));
        }
        table.row(row);
    }
    let mut r = Report::new();
    r.section("Table 3: average FCT, eager Homa vs Homa+Aeolus", table);
    r.note("paper: 13.59/141.82/281.62/25.86 vs 6.93/35.34/107.47/24.22 us");
    r
}
