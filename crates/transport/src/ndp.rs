//! NDP (SIGCOMM'17) — pull-based transport with cutting payload — and its
//! Aeolus variant that needs no switch modifications:
//!
//! * [`crate::common::FirstRttMode::Blind`]: original NDP — the sender blasts an initial
//!   window, switches *trim* overflowing data packets to headers
//!   ([`aeolus_sim::TrimmingQueue`]), receivers NACK trimmed packets and
//!   pace PULLs at line rate; packets are sprayed across all paths.
//! * [`crate::common::FirstRttMode::Aeolus`]: the same initial window is sent as droppable
//!   unscheduled packets through commodity RED/ECN switches; probe + per-
//!   packet ACKs replace trimming as the loss signal, and the (protected)
//!   pull stream clocks out retransmissions.
//!
//! Every full data packet is ACKed (NDP semantics); the receiver issues one
//! pull per arrival while demand remains, with a timer-paced pull queue per
//! host, plus a slow backstop for pathological control-plane loss.

use std::collections::VecDeque;

use aeolus_core::PreCreditSender;
use aeolus_sim::units::Time;
use aeolus_sim::{
    Ctx, Endpoint, FlowDesc, FlowId, FlowMap, LossCause, NodeId, Packet, PacketKind, TimerTable,
    TrafficClass, TransportEvent,
};

use crate::common::{
    abort_peer_silent, ack_packet, data_packet, probe_ack_packet, probe_packet, BaseConfig,
    Tombstones,
};
use crate::receiver_table::RecvBook;

/// NDP tunables.
#[derive(Debug, Clone, Copy)]
pub struct NdpConfig {
    /// Shared transport parameters (`mode` selects Blind vs Aeolus).
    pub base: BaseConfig,
    /// Backstop timer for stalled incomplete messages (re-issues a pull).
    pub backstop: Time,
}

impl NdpConfig {
    /// Defaults: backstop at 20× the base RTT, floored at 1 ms so loaded
    /// queueing is never mistaken for a stall.
    pub fn new(base: BaseConfig) -> NdpConfig {
        NdpConfig { base, backstop: (20 * base.base_rtt.max(1)).max(aeolus_sim::units::ms(1)) }
    }
}

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    /// The per-host pull pacer tick.
    PullTick,
    /// Stall backstop scan.
    Backstop,
    /// §6 probe-retry (Aeolus mode): total silence means even the probe was
    /// lost — resend it.
    ProbeRetry(FlowId),
}

struct SendFlow {
    desc: FlowDesc,
    core: PreCreditSender,
    /// Packet counter used as the spray path tag.
    tag: u64,
    /// Set once anything (ACK, probe ACK, NACK, pull) came back.
    heard_back: bool,
    /// Last time the receiver showed signs of life (peer-death watchdog).
    last_heard: Time,
    probe_seq: Option<u64>,
    /// Most recent loss signal, for retransmission attribution.
    last_loss: Option<LossCause>,
    /// Consecutive probe retries without a response, capped — each doubles
    /// the next retry interval (capped exponential backoff).
    retry_fires: u32,
}

struct RecvFlow {
    sender: NodeId,
    book: RecvBook,
    /// Pulls issued for this flow so far (each funds one packet).
    pulls_sent: u64,
    /// Packet arrivals (full data, trimmed headers — anything a transmission
    /// produced), which return their transmission credit.
    arrivals: u64,
    /// Transmission credits written off as lost (probe arithmetic, backstop).
    forgiven: u64,
    /// Initial-window packets the sender transmits unprompted (pre-paid
    /// credits).
    iw_pkts: u64,
    last_arrival: Time,
    /// Last *real* arrival — never rewound by the backstop's back-off, so it
    /// measures true peer silence for the death watchdog.
    last_progress: Time,
}

/// The per-host NDP endpoint.
pub struct NdpEndpoint {
    cfg: NdpConfig,
    send_flows: FlowMap<FlowId, SendFlow>,
    recv_flows: FlowMap<FlowId, RecvFlow>,
    timers: TimerTable<TimerKind>,
    /// Round-robin pull queue across flows (one entry = one pull to send).
    pull_queue: VecDeque<FlowId>,
    pull_pacer_armed: bool,
    /// Earliest time the next pull may leave — the pacer's memory across
    /// idle gaps, so bursts of arrivals cannot compress the pull spacing.
    next_pull_at: Time,
    backstop_armed: bool,
    dead: Tombstones,
}

impl NdpEndpoint {
    /// A fresh endpoint.
    pub fn new(cfg: NdpConfig) -> NdpEndpoint {
        NdpEndpoint {
            cfg,
            send_flows: FlowMap::new(),
            recv_flows: FlowMap::new(),
            timers: TimerTable::new(),
            pull_queue: VecDeque::new(),
            pull_pacer_armed: false,
            next_pull_at: 0,
            backstop_armed: false,
            dead: Tombstones::new(),
        }
    }

    /// Peer-silence abort (either role): drop local state, bury the id and
    /// record the abort. Pending pull-queue entries for the flow become
    /// harmless no-ops (`maybe_enqueue_pull` checks state at send time).
    fn give_up_on(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow);
        self.recv_flows.remove(flow);
        self.dead.bury(flow);
        abort_peer_silent(flow, ctx);
    }

    fn iw_bytes(&self, ctx: &Ctx<'_>) -> u64 {
        self.cfg.base.aeolus.burst_budget(ctx.line_rate, self.cfg.base.base_rtt)
    }


    fn pull_spacing(&self, ctx: &Ctx<'_>) -> Time {
        ctx.line_rate.serialize(self.cfg.base.mtu_wire() as u64)
    }

    /// Credits the sender is still holding: initial window + pulls, minus
    /// what came back (any packet arrival) and what was written off.
    fn outstanding(rf: &RecvFlow) -> u64 {
        (rf.iw_pkts + rf.pulls_sent).saturating_sub(rf.arrivals + rf.forgiven)
    }

    /// Pull deficit in *packets*: enough outstanding credit to cover the
    /// remaining bytes — but never more than one initial window outstanding
    /// (NDP's flow-control invariant; an unbounded pull window would let a
    /// backlogged sender blast far more than the receiver's downlink can
    /// drain). Counting packets (not bytes) keeps the accounting exact when
    /// retransmitted chunks are fragmented.
    fn pull_deficit(rf: &RecvFlow, mtu: u64) -> u64 {
        if rf.book.core.size().is_none() || rf.book.is_complete() {
            return 0;
        }
        let remaining = rf.book.remaining().unwrap_or(0);
        let window = rf.iw_pkts.max(1);
        remaining
            .div_ceil(mtu)
            .min(window)
            .saturating_sub(Self::outstanding(rf))
    }

    /// Queue up to one pull for `flow` (the arrival-clocked path).
    fn maybe_enqueue_pull(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let mtu = self.cfg.base.mtu_payload as u64;
        if let Some(rf) = self.recv_flows.get_mut(flow) {
            if Self::pull_deficit(rf, mtu) > 0 {
                rf.pulls_sent += 1;
                self.pull_queue.push_back(flow);
                self.arm_pull_pacer(ctx);
            }
        }
    }

    /// Queue pulls until the deficit is zero (used when a probe reveals a
    /// batch of losses at once; the pacer still spaces them at line rate).
    fn drain_pull_deficit(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let mtu = self.cfg.base.mtu_payload as u64;
        if let Some(rf) = self.recv_flows.get_mut(flow) {
            while Self::pull_deficit(rf, mtu) > 0 {
                rf.pulls_sent += 1;
                self.pull_queue.push_back(flow);
            }
        }
        self.arm_pull_pacer(ctx);
    }

    fn arm_pull_pacer(&mut self, ctx: &mut Ctx<'_>) {
        if self.pull_pacer_armed || self.pull_queue.is_empty() {
            return;
        }
        self.pull_pacer_armed = true;
        let delay = self.next_pull_at.saturating_sub(ctx.now);
        ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::PullTick));
    }

    fn on_pull_tick(&mut self, ctx: &mut Ctx<'_>) {
        self.pull_pacer_armed = false;
        let flow = match self.pull_queue.pop_front() {
            Some(f) => f,
            None => return,
        };
        let spacing = self.pull_spacing(ctx);
        if let Some(rf) = self.recv_flows.get(flow) {
            if !rf.book.is_complete() {
                let mut pull =
                    Packet::control(flow, ctx.host, rf.sender, rf.pulls_sent, PacketKind::Pull);
                pull.priority = 0;
                // Each pull funds one MTU of transmission: NDP's credit.
                ctx.emit(TransportEvent::CreditIssue {
                    flow,
                    bytes: self.cfg.base.mtu_payload as u64,
                });
                ctx.send(pull);
                self.next_pull_at = ctx.now + spacing;
            }
        }
        if !self.pull_queue.is_empty() {
            self.pull_pacer_armed = true;
            let delay = self.next_pull_at.saturating_sub(ctx.now);
            ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::PullTick));
        }
    }

    fn arm_backstop(&mut self, ctx: &mut Ctx<'_>) {
        if self.backstop_armed {
            return;
        }
        self.backstop_armed = true;
        ctx.set_timer_in_with(self.cfg.backstop, self.timers.arm(TimerKind::Backstop));
    }

    fn on_backstop(&mut self, ctx: &mut Ctx<'_>) {
        self.backstop_armed = false;
        let backstop = self.cfg.backstop;
        let mut stalled = Vec::new();
        let mut give_ups: Vec<FlowId> = Vec::new();
        let mut any_incomplete = false;
        for (id, rf) in self.recv_flows.iter() {
            if rf.book.is_complete() || rf.book.core.size().is_none() {
                continue;
            }
            if self.cfg.base.peer_silent(rf.last_progress, ctx.now) {
                // The sender has been dead past the death threshold despite
                // backed-off NACK rounds: abort instead of NACKing forever.
                give_ups.push(id);
                continue;
            }
            any_incomplete = true;
            // Outstanding credit with nothing arriving for a backstop period
            // means the fabric lost something: in-flight packets would have
            // drained long before. (Zero outstanding = waiting on our own
            // pull pacer, not on the network.)
            if Self::outstanding(rf) > 0
                && ctx.now.saturating_sub(rf.last_arrival) >= backstop
            {
                stalled.push(id);
            }
        }
        give_ups.sort_unstable();
        for id in give_ups {
            self.give_up_on(id, ctx);
        }
        // Slot order is not key order: sort so the NACK/pull emission order
        // stays exactly the seed's BTreeMap scan order.
        stalled.sort_unstable();
        for id in stalled {
            ctx.metrics.note_timeout(id);
            // Tell the sender what is missing (a stall means the loss signal
            // itself was lost — e.g. a corrupted scheduled packet, which
            // neither trims nor ACKs), then replenish the pull stream.
            let mtu = self.cfg.base.mtu_payload as u64;
            let mut nacks = Vec::new();
            if let Some(rf) = self.recv_flows.get_mut(id) {
                // The stuck credits are gone: write them off so fresh pulls
                // flow, and tell the sender exactly what to requeue.
                rf.forgiven += Self::outstanding(rf);
                let size = rf.book.core.size().expect("checked above");
                for (ms, me) in rf.book.core.missing_below(size).into_iter().take(4) {
                    let mut seq = ms;
                    while seq < me {
                        nacks.push((rf.sender, seq));
                        seq += mtu;
                    }
                }
                rf.last_arrival = ctx.now;
            }
            for (sender, seq) in nacks {
                let mut nack = Packet::control(id, ctx.host, sender, seq, PacketKind::Nack);
                nack.priority = 0;
                ctx.send(nack);
            }
            self.drain_pull_deficit(id, ctx);
        }
        self.arm_pull_pacer(ctx);
        if any_incomplete {
            self.backstop_armed = true;
            ctx.set_timer_in_with(backstop, self.timers.arm(TimerKind::Backstop));
        }
    }

    /// Send the next packet in response to a pull.
    fn pump_one(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let mtu = self.cfg.base.mtu_payload;
        if let Some(sf) = self.send_flows.get_mut(flow) {
            if let Some(chunk) = sf.core.next_scheduled_chunk(mtu) {
                let mut pkt = data_packet(
                    &sf.desc,
                    chunk.seq,
                    chunk.len,
                    TrafficClass::Scheduled,
                    chunk.retransmit,
                );
                sf.tag += 1;
                pkt.path_tag = sf.tag;
                if chunk.retransmit {
                    let cause = if chunk.last_resort {
                        LossCause::LastResort
                    } else {
                        sf.last_loss.unwrap_or(LossCause::Nack)
                    };
                    ctx.emit(TransportEvent::Retransmit {
                        flow,
                        bytes: chunk.len as u64,
                        cause,
                    });
                }
                ctx.send(pkt);
            }
        }
    }

    fn on_probe_retry(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let retry_rtts = self.cfg.base.aeolus.probe_retry_rtts;
        let pcfg = self.cfg.base;
        let mut give_up = false;
        let fires = {
            let sf = match self.send_flows.get_mut(flow) {
                Some(sf) => sf,
                None => return,
            };
            if sf.heard_back {
                None
            } else if pcfg.peer_silent(sf.last_heard, ctx.now) {
                give_up = true;
                None
            } else {
                ctx.metrics.note_timeout(flow);
                if let Some(ps) = sf.probe_seq {
                    let mut probe = probe_packet(&sf.desc, ps);
                    probe.priority = 7;
                    ctx.send(probe);
                }
                sf.retry_fires = (sf.retry_fires + 1).min(6);
                Some(sf.retry_fires)
            }
        };
        if give_up {
            self.give_up_on(flow, ctx);
            return;
        }
        if let Some(fires) = fires {
            if retry_rtts > 0 {
                // Capped exponential backoff on fruitless retries.
                let base = (retry_rtts as Time * self.cfg.base.base_rtt.max(1))
                    .max(aeolus_sim::units::ms(2));
                let token = self.timers.arm(TimerKind::ProbeRetry(flow));
                ctx.set_timer_in_with(base << fires.min(6), token);
            }
        }
    }

    fn ensure_recv_flow(&mut self, pkt: &Packet, ctx: &Ctx<'_>) {
        let now = ctx.now;
        let iw = self.iw_bytes(ctx);
        let mtu = self.cfg.base.mtu_payload as u64;
        let rf = self.recv_flows.get_or_insert_with(pkt.flow, || RecvFlow {
            sender: pkt.src,
            book: RecvBook::new(),
            pulls_sent: 0,
            arrivals: 0,
            forgiven: 0,
            iw_pkts: 0,
            last_arrival: now,
            last_progress: now,
        });
        rf.book.learn_size(pkt.flow_size);
        if rf.iw_pkts == 0 {
            if let Some(size) = rf.book.core.size() {
                rf.iw_pkts = iw.min(size).div_ceil(mtu);
            }
        }
        rf.last_arrival = now;
        rf.last_progress = now;
    }
}

impl Endpoint for NdpEndpoint {
    fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
        let mode = self.cfg.base.mode;
        let budget = self.iw_bytes(ctx).min(flow.size);
        let mut core = PreCreditSender::new(flow.size, budget);
        // NDP recovery is signal-driven (NACKs in Blind mode, probe/SACK in
        // Aeolus mode): last-resort duplication only feeds trim loops.
        core.disable_last_resort();
        let mut tag = 0u64;
        let mtu = self.cfg.base.mtu_payload;
        let mut burst_sent = 0u64;
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStart { flow: flow.id, bytes: budget });
        }
        while let Some(chunk) = core.next_burst_chunk(mtu) {
            let mut pkt = data_packet(&flow, chunk.seq, chunk.len, TrafficClass::Unscheduled, false);
            mode.stamp_unscheduled(&mut pkt, 0, 7);
            tag += 1;
            pkt.path_tag = tag;
            burst_sent += chunk.len as u64;
            ctx.send(pkt);
        }
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStop { flow: flow.id, sent: burst_sent });
        }
        let mut probe_seq = None;
        if let Some(ps) = core.end_burst() {
            if mode.probe_recovery() {
                let mut probe = probe_packet(&flow, ps);
                probe.priority = 7; // trail the burst (moot in a FIFO, kept for symmetry)
                ctx.send(probe);
                probe_seq = Some(ps);
            }
        }
        if mode.probe_recovery() && self.cfg.base.aeolus.probe_retry_rtts > 0 {
            let delay =
                (self.cfg.base.aeolus.probe_retry_rtts as Time * self.cfg.base.base_rtt.max(1))
                    .max(aeolus_sim::units::ms(2));
            ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::ProbeRetry(flow.id)));
        }
        self.send_flows.insert(
            flow.id,
            SendFlow {
                desc: flow,
                core,
                tag,
                heard_back: false,
                last_heard: ctx.now,
                probe_seq,
                last_loss: None,
                retry_fires: 0,
            },
        );
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if self.dead.holds(pkt.flow) {
            // Stale wire traffic for an aborted flow must not resurrect it.
            return;
        }
        match pkt.kind {
            PacketKind::Data if pkt.trimmed => {
                // A cut-payload header: it returns its transmission credit
                // (the payload is gone, so the credit frees immediately);
                // NACK so the sender requeues the bytes, then keep pulling.
                self.ensure_recv_flow(&pkt, ctx);
                let sender = {
                    let rf = self.recv_flows.get_mut(pkt.flow).expect("just ensured");
                    rf.arrivals += 1;
                    rf.sender
                };
                let mut nack = Packet::control(pkt.flow, ctx.host, sender, pkt.seq, PacketKind::Nack);
                nack.priority = 0;
                ctx.send(nack);
                self.maybe_enqueue_pull(pkt.flow, ctx);
                self.arm_backstop(ctx);
            }
            PacketKind::Data => {
                self.ensure_recv_flow(&pkt, ctx);
                let rf = self.recv_flows.get_mut(pkt.flow).expect("just ensured");
                rf.arrivals += 1;
                let v = rf.book.on_data(&pkt, ctx);
                let sender = rf.sender;
                if let Some((s, e)) = v.acked_range {
                    let mut a = ack_packet(pkt.flow, ctx.host, sender, s, e);
                    a.priority = 0;
                    ctx.send(a);
                }
                self.maybe_enqueue_pull(pkt.flow, ctx);
                self.arm_backstop(ctx);
            }
            PacketKind::Probe => {
                self.ensure_recv_flow(&pkt, ctx);
                let rf = self.recv_flows.get_mut(pkt.flow).expect("just ensured");
                rf.book.core.on_probe(pkt.seq, pkt.flow_size);
                let sender = rf.sender;
                let mut pa = probe_ack_packet(pkt.flow, ctx.host, sender, pkt.seq);
                pa.priority = 0;
                ctx.send(pa);
                // The probe arrives behind every surviving burst packet
                // (one FIFO path), so the burst loss is exact arithmetic:
                // write the lost packets' credits off and top up the pulls.
                let mtu = self.cfg.base.mtu_payload as u64;
                {
                    let rf = self.recv_flows.get_mut(pkt.flow).expect("just ensured");
                    let burst_lost = pkt.seq.saturating_sub(rf.book.core.received_below(pkt.seq));
                    let lost_pkts = burst_lost.div_ceil(mtu);
                    let outstanding = Self::outstanding(rf);
                    rf.forgiven += lost_pkts.min(outstanding);
                }
                self.drain_pull_deficit(pkt.flow, ctx);
                self.arm_backstop(ctx);
            }
            PacketKind::Nack => {
                // Edge-triggered: every trimmed packet produces exactly one
                // NACK, including re-trimmed retransmissions, so requeue
                // unconditionally.
                let mtu = self.cfg.base.mtu_payload as u64;
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    let end = (pkt.seq + mtu).min(sf.desc.size);
                    let lost = sf.core.requeue_lost(pkt.seq, end);
                    if lost > 0 {
                        sf.last_loss = Some(LossCause::Nack);
                        ctx.emit(TransportEvent::LossDetected {
                            flow: pkt.flow,
                            bytes: lost,
                            cause: LossCause::Nack,
                        });
                    }
                }
            }
            PacketKind::Pull => {
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    ctx.emit(TransportEvent::CreditReceipt {
                        flow: pkt.flow,
                        bytes: self.cfg.base.mtu_payload as u64,
                    });
                }
                self.pump_one(pkt.flow, ctx);
            }
            PacketKind::Ack { of_probe, end } => {
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    if of_probe {
                        let lost = sf.core.on_probe_ack();
                        if lost > 0 {
                            sf.last_loss = Some(LossCause::Probe);
                            ctx.emit(TransportEvent::LossDetected {
                                flow: pkt.flow,
                                bytes: lost,
                                cause: LossCause::Probe,
                            });
                        }
                    } else {
                        // Spraying reorders packets: never infer loss from
                        // ACK gaps here.
                        sf.core.on_ack_no_infer(pkt.seq, end);
                    }
                }
            }
            other => {
                debug_assert!(false, "unexpected packet kind for NDP: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match self.timers.fire(token) {
            Some(TimerKind::PullTick) => self.on_pull_tick(ctx),
            Some(TimerKind::Backstop) => self.on_backstop(ctx),
            Some(TimerKind::ProbeRetry(f)) => self.on_probe_retry(f, ctx),
            None => {}
        }
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        // A host crash wipes every byte of transport state; the timer
        // generation bump makes all queued tokens stale.
        self.send_flows.clear();
        self.recv_flows.clear();
        self.timers.clear();
        self.pull_queue.clear();
        self.pull_pacer_armed = false;
        self.next_pull_at = 0;
        self.backstop_armed = false;
        self.dead.clear();
    }

    fn on_flow_abort(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
        self.dead.bury(flow.id);
    }

    fn on_flow_restart(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.dead.raise(flow.id);
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
    }
}
