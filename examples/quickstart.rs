//! Quickstart: the headline Aeolus effect in ~40 lines.
//!
//! A 30 KB message (sub-BDP) is sent on the paper's 8-host 10 Gbps testbed
//! under plain ExpressPass (which waits one RTT for credits) and under
//! ExpressPass+Aeolus (which bursts the message pre-credit). Aeolus finishes
//! the message roughly one RTT sooner.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aeolus::prelude::*;

fn fct_us(scheme: Scheme) -> f64 {
    let mut h = SchemeBuilder::new(scheme)
        .topology(TopoSpec::SingleSwitch {
            hosts: 8,
            link: LinkParams::uniform(Rate::gbps(10), us(3)),
        })
        .build();
    let hosts = h.hosts().to_vec();
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 30_000, start: 0 }]);
    assert!(h.run(ms(100)), "flow must complete");
    h.metrics().flow(FlowId(1)).unwrap().fct().unwrap() as f64 / 1e6
}

fn main() {
    let plain = fct_us(Scheme::ExpressPass);
    let aeolus = fct_us(Scheme::ExpressPassAeolus);
    println!("30 KB message on the 10G testbed (base RTT ~14 us):");
    println!("  ExpressPass         : {plain:7.2} us  (request, wait one RTT for credits, send)");
    println!("  ExpressPass + Aeolus: {aeolus:7.2} us  (pre-credit unscheduled burst)");
    println!("  speedup             : {:.2}x", plain / aeolus);
    assert!(aeolus < plain, "Aeolus must win on sub-BDP flows");
}
