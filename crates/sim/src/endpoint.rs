//! Host endpoints: where transport protocols live.
//!
//! An [`Endpoint`] is installed on each host and receives flow arrivals,
//! packets and timer callbacks. Handlers interact with the network only
//! through the [`Ctx`] passed in — sends and timers are buffered as actions
//! and applied by the engine after the handler returns, which keeps the
//! borrow structure simple and the event order deterministic.

use crate::metrics::Metrics;
use crate::packet::{FlowDesc, NodeId, Packet};
use crate::telemetry::{FaultEvent, TraceSink, TransportEvent};
use crate::units::{Rate, Time};

/// A transport endpoint installed on a host.
pub trait Endpoint {
    /// A new flow originates at this host.
    fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>);
    /// A packet addressed to this host arrived.
    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>);
    /// A timer set through [`Ctx::set_timer_in`] fired.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>);
    /// The host crashed (fault injection): wipe all per-flow transport
    /// state — flowmap slots, timers, credit/grant ledgers. Timers already
    /// in the event queue will still fire; they must go stale, not
    /// misfire (use [`crate::flowmap::TimerTable::clear`]).
    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {}
    /// A flow this endpoint participates in (as sender or receiver) was
    /// aborted by the engine. Drop its state and tombstone the flow id so
    /// stale in-flight packets cannot resurrect it before a restart.
    fn on_flow_abort(&mut self, _flow: FlowDesc, _ctx: &mut Ctx<'_>) {}
    /// A previously-aborted flow is about to be relaunched (the engine
    /// re-delivers `on_flow_arrival` at the source right after this).
    /// Clear the tombstone and any leftover incarnation state.
    fn on_flow_restart(&mut self, _flow: FlowDesc, _ctx: &mut Ctx<'_>) {}
}

/// Buffered actions produced by an endpoint handler.
#[derive(Default)]
pub struct Actions {
    /// Packets to enqueue on this host's NIC, in order.
    pub sends: Vec<Packet>,
    /// Timers to arm: (absolute fire time, token).
    pub timers: Vec<(Time, u64)>,
}

/// Handler context: simulation time, host identity, and action buffers.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// The host this endpoint runs on.
    pub host: NodeId,
    /// The host NIC line rate.
    pub line_rate: Rate,
    /// Run metrics (flow completion, efficiency, timeouts).
    pub metrics: &'a mut Metrics,
    pub(crate) tracer: &'a mut dyn TraceSink,
    pub(crate) trace_enabled: bool,
    pub(crate) actions: &'a mut Actions,
    pub(crate) next_token: &'a mut u64,
}

impl<'a> Ctx<'a> {
    /// Queue `pkt` for transmission on this host's NIC.
    pub fn send(&mut self, pkt: Packet) {
        self.actions.sends.push(pkt);
    }

    /// Arm a timer to fire `delay` from now; returns its token.
    pub fn set_timer_in(&mut self, delay: Time) -> u64 {
        let token = *self.next_token;
        *self.next_token += 1;
        self.actions.timers.push((self.now + delay, token));
        token
    }

    /// Arm a timer to fire `delay` from now under a caller-chosen token
    /// (typically a [`crate::flowmap::TimerTable`] token, so the endpoint
    /// can match the callback to its payload without a map lookup). Tokens
    /// never affect event ordering — events order by `(time, seq)` — so
    /// per-endpoint token spaces may overlap freely.
    pub fn set_timer_in_with(&mut self, delay: Time, token: u64) {
        self.actions.timers.push((self.now + delay, token));
    }

    /// Whether a recording tracer is attached. Handlers can skip building
    /// expensive event payloads when this is false (emitting through
    /// [`Ctx::emit`] is already a no-op then).
    pub fn tracing(&self) -> bool {
        self.trace_enabled
    }

    /// Report a transport-level telemetry event (credit issue/receipt,
    /// burst start/stop, loss detection, retransmission). No-op unless the
    /// engine runs with a recording tracer.
    pub fn emit(&mut self, ev: TransportEvent) {
        if self.trace_enabled {
            self.tracer.transport_event(self.now, self.host, &ev);
        }
    }

    /// Report a fault-recovery event (e.g. a transport-initiated flow abort
    /// after a peer-silence threshold). No-op unless tracing.
    pub fn emit_fault(&mut self, ev: FaultEvent) {
        if self.trace_enabled {
            self.tracer.fault_event(self.now, &ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_tokens_are_unique_and_absolute() {
        let mut metrics = Metrics::new();
        let mut actions = Actions::default();
        let mut next = 7u64;
        let mut sink = crate::telemetry::NullTracer;
        let mut ctx = Ctx {
            now: 1000,
            host: NodeId(0),
            line_rate: Rate::gbps(100),
            metrics: &mut metrics,
            tracer: &mut sink,
            trace_enabled: false,
            actions: &mut actions,
            next_token: &mut next,
        };
        let a = ctx.set_timer_in(50);
        let b = ctx.set_timer_in(20);
        assert_ne!(a, b);
        assert_eq!(actions.timers, vec![(1050, 7), (1020, 8)]);
        assert_eq!(next, 9);
    }
}
