//! Property-based cross-crate invariants: for random small scenarios on any
//! scheme, every flow completes, delivery is exact, selective dropping never
//! touches protected packets, and accounting stays consistent.

use aeolus::prelude::*;
use aeolus::sim::topology::LinkParams;
use aeolus::sim::{DropReason, TrafficClass};
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::ExpressPass),
        Just(Scheme::ExpressPassAeolus),
        Just(Scheme::ExpressPassOracle),
        Just(Scheme::ExpressPassPrioQueue { rto: ms(10) }),
        Just(Scheme::Homa { rto: ms(10) }),
        Just(Scheme::HomaAeolus),
        Just(Scheme::HomaOracle),
        Just(Scheme::Ndp),
        Just(Scheme::NdpAeolus),
        Just(Scheme::PHost { rto: ms(10) }),
        Just(Scheme::PHostAeolus),
        Just(Scheme::Dctcp { rto: ms(10) }),
        Just(Scheme::Fastpass),
        Just(Scheme::FastpassAeolus),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn random_scenarios_deliver_exactly_once(
        scheme in scheme_strategy(),
        // Up to 6 flows with arbitrary sizes and staggered starts.
        flow_specs in prop::collection::vec((1u64..200_000, 0u64..50), 1..6),
        seed in 0u64..1000,
    ) {
        let spec = TopoSpec::SingleSwitch {
            hosts: 8,
            link: LinkParams::uniform(Rate::gbps(10), us(3)),
        };
        let mut h = Harness::new(scheme, SchemeParams::new(0), spec);
        let hosts = h.hosts().to_vec();
        let n = hosts.len() as u64;
        let flows: Vec<FlowDesc> = flow_specs
            .iter()
            .enumerate()
            .map(|(i, &(size, start_us))| FlowDesc {
                id: FlowId(i as u64 + 1),
                src: hosts[(1 + (i as u64 + seed) % (n - 1)) as usize],
                dst: hosts[((i as u64 + seed + 3) % n) as usize],
                size,
                start: us(start_us),
            })
            .filter(|f| f.src != f.dst)
            .collect();
        prop_assume!(!flows.is_empty());
        h.schedule(&flows);
        let done = h.run(ms(2000));
        let m = h.metrics();

        // 1. Everything completes.
        prop_assert!(done, "{}: {}/{} complete", scheme.name(), m.completed_count(), m.flow_count());
        // 2. Delivery is exact: every byte exactly once at the app layer.
        for r in m.flows() {
            prop_assert_eq!(r.delivered, r.desc.size);
            prop_assert!(r.fct().unwrap() > 0);
        }
        // 3. Selective dropping never touches scheduled or control packets.
        prop_assert_eq!(
            m.drops.get(&(DropReason::SelectiveDrop, TrafficClass::Scheduled)).copied().unwrap_or(0), 0);
        prop_assert_eq!(
            m.drops.get(&(DropReason::SelectiveDrop, TrafficClass::Control)).copied().unwrap_or(0), 0);
        // 4. Efficiency accounting is sane.
        let eff = m.transfer_efficiency();
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-9, "efficiency {}", eff);
        prop_assert!(m.payload_delivered <= m.payload_sent);
    }

    #[test]
    fn fcts_are_at_least_ideal(
        scheme in scheme_strategy(),
        size in 1u64..500_000,
    ) {
        let spec = TopoSpec::SingleSwitch {
            hosts: 4,
            link: LinkParams::uniform(Rate::gbps(10), us(3)),
        };
        let mut h = Harness::new(scheme, SchemeParams::new(0), spec);
        let hosts = h.hosts().to_vec();
        h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size, start: 0 }]);
        prop_assert!(h.run(ms(2000)), "{} did not finish", scheme.name());
        let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
        // Causality: no flow beats its store-and-forward lower bound.
        prop_assert!(
            fct + us(1) >= h.ideal_fct(size),
            "{}: fct {} < ideal {}",
            scheme.name(),
            fct,
            h.ideal_fct(size)
        );
    }
}
