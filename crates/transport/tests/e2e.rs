//! End-to-end protocol tests: every scheme must deliver every flow on every
//! topology family, and the Aeolus invariants must hold under congestion.

use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ms, us};
use aeolus_sim::{DropReason, FlowDesc, FlowId, Rate, TrafficClass};
use aeolus_transport::{Harness, Scheme, SchemeBuilder, TopoSpec};

fn testbed() -> TopoSpec {
    // The paper's testbed: 8 hosts, one switch, 10 Gbps, ~14 us base RTT.
    TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) }
}

fn small_leaf_spine() -> TopoSpec {
    TopoSpec::LeafSpine {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 4,
        link: LinkParams::uniform(Rate::gbps(100), us(1)),
    }
}

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::ExpressPassOracle,
        Scheme::ExpressPassPrioQueue { rto: ms(10) },
        Scheme::Homa { rto: ms(10) },
        Scheme::HomaAeolus,
        Scheme::HomaOracle,
        Scheme::Ndp,
        Scheme::NdpAeolus,
        Scheme::PHost { rto: ms(10) },
        Scheme::PHostAeolus,
        Scheme::Dctcp { rto: ms(10) },
        Scheme::Fastpass,
        Scheme::FastpassAeolus,
    ]
}

fn run_one(scheme: Scheme, spec: TopoSpec, flows: &[FlowDesc], horizon: u64) -> Harness {
    let mut h = SchemeBuilder::new(scheme).topology(spec).build();
    h.schedule(flows);
    let done = h.run(horizon);
    assert!(
        done,
        "{}: only {}/{} flows completed",
        scheme.name(),
        h.metrics().completed_count(),
        h.metrics().flow_count()
    );
    h
}

fn pair_flows(h: &Harness, sizes: &[u64]) -> Vec<FlowDesc> {
    let hosts = h.hosts();
    sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| FlowDesc {
            id: FlowId(i as u64 + 1),
            src: hosts[i % (hosts.len() - 1) + 1],
            dst: hosts[0],
            size,
            start: (i as u64) * us(1),
        })
        .collect()
}

#[test]
fn every_scheme_delivers_single_small_flow() {
    for scheme in all_schemes() {
        let h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let flows =
            vec![FlowDesc { id: FlowId(1), src: h.hosts()[1], dst: h.hosts()[0], size: 3_000, start: 0 }];
        let h = run_one(scheme, testbed(), &flows, ms(100));
        let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
        assert!(fct > 0, "{}: zero FCT", scheme.name());
    }
}

#[test]
fn every_scheme_delivers_single_large_flow() {
    for scheme in all_schemes() {
        let h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let flows = vec![FlowDesc {
            id: FlowId(1),
            src: h.hosts()[1],
            dst: h.hosts()[0],
            size: 500_000,
            start: 0,
        }];
        let h = run_one(scheme, testbed(), &flows, ms(500));
        let rec = h.metrics().flow(FlowId(1)).unwrap();
        assert_eq!(rec.delivered, 500_000, "{}", scheme.name());
    }
}

#[test]
fn every_scheme_survives_7_to_1_incast() {
    for scheme in all_schemes() {
        let h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let flows = pair_flows(&h, &[40_000; 7]);
        let h = run_one(scheme, testbed(), &flows, ms(2000));
        assert_eq!(h.metrics().completed_count(), 7, "{}", scheme.name());
    }
}

#[test]
fn every_scheme_works_on_leaf_spine_cross_traffic() {
    for scheme in all_schemes() {
        let h = SchemeBuilder::new(scheme).topology(small_leaf_spine()).build();
        let hosts = h.hosts().to_vec();
        // Cross-rack flows in both directions plus one intra-rack flow.
        let flows = vec![
            FlowDesc { id: FlowId(1), src: hosts[0], dst: hosts[5], size: 200_000, start: 0 },
            FlowDesc { id: FlowId(2), src: hosts[6], dst: hosts[1], size: 80_000, start: us(2) },
            FlowDesc { id: FlowId(3), src: hosts[2], dst: hosts[3], size: 20_000, start: us(4) },
        ];
        let h = run_one(scheme, small_leaf_spine(), &flows, ms(500));
        assert_eq!(h.metrics().completed_count(), 3, "{}", scheme.name());
    }
}

#[test]
fn aeolus_never_selectively_drops_scheduled_packets() {
    // Heavy incast: plenty of selective drops, all of them unscheduled.
    for scheme in
        [Scheme::ExpressPassAeolus, Scheme::HomaAeolus, Scheme::NdpAeolus, Scheme::PHostAeolus]
    {
        let h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let flows = pair_flows(&h, &[100_000; 7]);
        let h = run_one(scheme, testbed(), &flows, ms(2000));
        let m = h.metrics();
        assert_eq!(
            m.drops_of(DropReason::SelectiveDrop, TrafficClass::Scheduled),
            0,
            "{}: selective dropping must never touch scheduled packets",
            scheme.name()
        );
        assert_eq!(
            m.drops_of(DropReason::SelectiveDrop, TrafficClass::Control),
            0,
            "{}: control packets are protected",
            scheme.name()
        );
    }
}

#[test]
fn aeolus_selective_drops_happen_under_incast() {
    // With 7 senders bursting a BDP each into one 10G port, the 6 KB
    // threshold must trigger.
    let h = SchemeBuilder::new(Scheme::ExpressPassAeolus).topology(testbed()).build();
    let flows = pair_flows(&h, &[100_000; 7]);
    let h = run_one(Scheme::ExpressPassAeolus, testbed(), &flows, ms(2000));
    assert!(
        h.metrics().drops_by_reason(DropReason::SelectiveDrop) > 0,
        "expected selective drops under incast"
    );
}

#[test]
fn expresspass_aeolus_beats_plain_expresspass_on_small_flows() {
    // The headline effect: a sub-BDP flow completes ~1 RTT faster.
    let mk = |scheme| {
        let h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let flows =
            vec![FlowDesc { id: FlowId(1), src: h.hosts()[1], dst: h.hosts()[0], size: 10_000, start: 0 }];
        let h = run_one(scheme, testbed(), &flows, ms(100));
        h.metrics().flow(FlowId(1)).unwrap().fct().unwrap()
    };
    let plain = mk(Scheme::ExpressPass);
    let aeolus = mk(Scheme::ExpressPassAeolus);
    assert!(
        aeolus * 2 < plain,
        "Aeolus ({aeolus} ps) should finish sub-BDP flows far faster than plain ExpressPass ({plain} ps)"
    );
}

#[test]
fn ndp_trims_under_incast_but_aeolus_variant_does_not() {
    let h = SchemeBuilder::new(Scheme::Ndp).topology(testbed()).build();
    let flows = pair_flows(&h, &[100_000; 7]);
    let h = run_one(Scheme::Ndp, testbed(), &flows, ms(2000));
    assert!(h.metrics().trimmed > 0, "NDP should trim under incast");

    let h2 = SchemeBuilder::new(Scheme::NdpAeolus).topology(testbed()).build();
    let flows = pair_flows(&h2, &[100_000; 7]);
    let h2 = run_one(Scheme::NdpAeolus, testbed(), &flows, ms(2000));
    assert_eq!(h2.metrics().trimmed, 0, "NDP+Aeolus needs no trimming switches");
}

#[test]
fn transfer_efficiency_reasonable_under_incast() {
    // Under a synchronized 7:1 incast ~6/7 of every pre-credit burst is
    // selectively dropped by design (the §6 tradeoff): efficiency dips but
    // must stay far above eager-Homa's collapse (~0.31 in Table 1).
    for scheme in [Scheme::ExpressPassAeolus, Scheme::HomaAeolus, Scheme::NdpAeolus] {
        let h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let flows = pair_flows(&h, &[60_000; 7]);
        let h = run_one(scheme, testbed(), &flows, ms(2000));
        let eff = h.metrics().transfer_efficiency();
        assert!(eff > 0.6, "{}: transfer efficiency {eff}", scheme.name());
    }
}

#[test]
fn transfer_efficiency_near_one_without_contention() {
    // With spare bandwidth nothing is dropped: every byte sent once.
    for scheme in [Scheme::ExpressPassAeolus, Scheme::HomaAeolus, Scheme::NdpAeolus] {
        let h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        let flows: Vec<FlowDesc> = (0..4)
            .map(|i| FlowDesc {
                id: FlowId(i + 1),
                src: hosts[i as usize + 1],
                dst: hosts[(i as usize + 5) % 8],
                size: 100_000,
                start: i * us(30),
            })
            .collect();
        let h = run_one(scheme, testbed(), &flows, ms(2000));
        let eff = h.metrics().transfer_efficiency();
        assert!(eff > 0.98, "{}: transfer efficiency {eff}", scheme.name());
    }
}

#[test]
fn aeolus_schemes_see_no_timeouts_under_moderate_incast() {
    for scheme in [Scheme::ExpressPassAeolus, Scheme::HomaAeolus] {
        let h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let flows = pair_flows(&h, &[60_000; 7]);
        let h = run_one(scheme, testbed(), &flows, ms(2000));
        assert_eq!(h.metrics().flows_with_timeouts(), 0, "{}", scheme.name());
    }
}

#[test]
fn fat_tree_cross_pod_delivery() {
    for scheme in [Scheme::ExpressPassAeolus, Scheme::HomaAeolus, Scheme::NdpAeolus] {
        let spec = TopoSpec::FatTree {
            spines: 2,
            pods: 2,
            tors_per_pod: 2,
            aggs_per_pod: 2,
            hosts_per_tor: 2,
            link: LinkParams::uniform(Rate::gbps(100), us(1)),
        };
        let h = SchemeBuilder::new(scheme).topology(spec).build();
        let hosts = h.hosts().to_vec();
        let flows = vec![
            // Cross-pod (first pod host -> last pod host).
            FlowDesc { id: FlowId(1), src: hosts[0], dst: hosts[7], size: 150_000, start: 0 },
            // Same-ToR.
            FlowDesc { id: FlowId(2), src: hosts[2], dst: hosts[3], size: 30_000, start: 0 },
        ];
        let mut h = h;
        h.schedule(&flows);
        assert!(h.run(ms(500)), "{}: fat-tree flows incomplete", scheme.name());
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let h = SchemeBuilder::new(Scheme::HomaAeolus).topology(testbed()).build();
        let flows = pair_flows(&h, &[50_000, 20_000, 80_000, 10_000, 35_000, 5_000, 64_000]);
        let h = run_one(Scheme::HomaAeolus, testbed(), &flows, ms(2000));
        h.metrics().flows().map(|r| (r.desc.id, r.fct().unwrap())).collect::<Vec<_>>()
    };
    let mut a = run();
    let mut b = run();
    a.sort();
    b.sort();
    assert_eq!(a, b, "same seed, same trace, same FCTs");
}
