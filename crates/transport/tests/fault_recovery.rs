//! Recovery-hardening tests: every scheme must finish every flow under
//! injected wire faults — corruption loss on data, credits, ACKs and
//! probes, and whole-fabric link flaps. These are the harness-level
//! counterpart of the `PreCreditSender` priority-order unit tests: the
//! same retransmission machinery, driven by real losses instead of
//! hand-sequenced ACKs, with the watchdog turning any hang into a loud
//! per-flow diagnostic instead of a test timeout.

use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ms, us};
use aeolus_sim::{DropReason, FaultPlan, FlowDesc, FlowId, LinkFilter, PacketFilter, Rate};
use aeolus_transport::{Harness, Scheme, SchemeBuilder, SchemeParams, TopoSpec};

fn testbed() -> TopoSpec {
    TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) }
}

/// The six schemes of the paper's evaluation.
fn schemes_under_fire() -> Vec<Scheme> {
    vec![
        Scheme::ExpressPassAeolus,
        Scheme::HomaAeolus,
        Scheme::NdpAeolus,
        Scheme::PHostAeolus,
        Scheme::FastpassAeolus,
        Scheme::Dctcp { rto: ms(10) },
    ]
}

fn incast_flows(h: &Harness, sizes: &[u64]) -> Vec<FlowDesc> {
    let hosts = h.hosts();
    sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| FlowDesc {
            id: FlowId(i as u64 + 1),
            src: hosts[i % (hosts.len() - 1) + 1],
            dst: hosts[0],
            size,
            start: (i as u64) * us(1),
        })
        .collect()
}

/// Build, run under the watchdog, and return the harness; panics with the
/// watchdog's per-flow stuck-state report if anything hangs.
fn run_faulted(scheme: Scheme, params: SchemeParams, sizes: &[u64], horizon: u64) -> Harness {
    let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
    let flows = incast_flows(&h, sizes);
    h.schedule(&flows);
    if let Err(report) = h.run_watchdog(horizon) {
        panic!("{}: {report}", scheme.name());
    }
    h
}

#[test]
fn every_scheme_survives_heavy_corruption_loss() {
    // 20% of every packet — data, credits, grants, ACKs, probes — dies on
    // the wire. Far beyond the chaos sweep's 1% ceiling; the point is that
    // no retry path deadlocks even when several signals die in a row.
    for scheme in schemes_under_fire() {
        let mut params = SchemeParams::new(0);
        params.faults =
            FaultPlan::new(11).with_loss(0.2, PacketFilter::Any, LinkFilter::All);
        let h = run_faulted(scheme, params, &[40_000; 4], ms(2000));
        let m = h.metrics();
        assert!(
            m.drops_by_reason(DropReason::Corruption) > 0,
            "{}: the plan injected nothing",
            scheme.name()
        );
        assert!(
            m.flows().all(|r| r.delivered == r.desc.size),
            "{}: short delivery",
            scheme.name()
        );
    }
}

#[test]
fn credit_loss_triggers_stall_recovery() {
    // Half of all credit-carrying control packets vanish. The credit-loop
    // transports must detect the stall receiver-side and re-issue; the
    // senders must re-request. Without the stall/retry hardening both
    // ExpressPass and Fastpass hang here forever.
    for scheme in [Scheme::ExpressPassAeolus, Scheme::FastpassAeolus] {
        let mut params = SchemeParams::new(0);
        params.faults =
            FaultPlan::new(23).with_loss(0.5, PacketFilter::Credit, LinkFilter::All);
        let h = run_faulted(scheme, params, &[60_000; 3], ms(2000));
        assert_eq!(h.metrics().completed_count(), 3, "{}", scheme.name());
    }
}

#[test]
fn control_blackout_retries_reestablish_contact() {
    // 40% loss on *all* control traffic — requests, credits, ACKs, NACKs,
    // probes. First-contact packets (ExpressPass Requests, pHost RTS) can
    // die repeatedly; the capped-backoff retry timers must keep re-trying
    // until the receiver learns the flow exists.
    for scheme in [Scheme::ExpressPassAeolus, Scheme::PHostAeolus, Scheme::FastpassAeolus] {
        let mut params = SchemeParams::new(0);
        params.faults =
            FaultPlan::new(31).with_loss(0.4, PacketFilter::Control, LinkFilter::All);
        let h = run_faulted(scheme, params, &[20_000; 3], ms(2000));
        assert_eq!(h.metrics().completed_count(), 3, "{}", scheme.name());
    }
}

#[test]
fn probe_loss_with_retry_disabled_still_completes() {
    // The probe_retry_rtts = 0 regime: every probe dies on the wire and no
    // retry replaces it, so tail losses in the unscheduled burst are never
    // *declared* — completion must come from the last-resort category-3
    // retransmissions riding ordinary credits.
    let mut params = SchemeParams::new(0);
    params.aeolus.probe_retry_rtts = 0;
    params.faults = FaultPlan::new(43)
        .with_loss(1.0, PacketFilter::Probe, LinkFilter::All)
        .with_loss(0.3, PacketFilter::Unscheduled, LinkFilter::All);
    let h = run_faulted(Scheme::ExpressPassAeolus, params, &[30_000; 2], ms(2000));
    let m = h.metrics();
    assert_eq!(m.completed_count(), 2);
    assert!(
        m.flows().any(|r| r.retransmitted > 0),
        "burst losses must have been repaired by retransmission"
    );
}

#[test]
fn probe_retry_repairs_lost_probes_when_enabled() {
    // Same fault schedule with the retry enabled (the default): the flow
    // completes and the retry path re-sends the probe, so tail losses are
    // declared instead of waiting for the last resort.
    let mut params = SchemeParams::new(0);
    assert!(params.aeolus.probe_retry_rtts > 0, "default must enable the retry");
    params.faults = FaultPlan::new(43)
        .with_loss(1.0, PacketFilter::Probe, LinkFilter::All)
        .with_loss(0.3, PacketFilter::Unscheduled, LinkFilter::All);
    let h = run_faulted(Scheme::ExpressPassAeolus, params, &[30_000; 2], ms(2000));
    assert_eq!(h.metrics().completed_count(), 2);
}

#[test]
fn every_scheme_survives_a_fabric_flap() {
    // All links dark for 300 µs while the incast is mid-flight; queued
    // packets stall, in-flight packets are cut. Every flow must still
    // complete once the fabric comes back.
    for scheme in schemes_under_fire() {
        let mut params = SchemeParams::new(0);
        params.faults = FaultPlan::new(5).with_down(us(100), us(400), LinkFilter::All);
        let h = run_faulted(scheme, params, &[40_000; 7], ms(2000));
        assert_eq!(h.metrics().completed_count(), 7, "{}", scheme.name());
    }
}

#[test]
fn corruption_is_never_conflated_with_selective_drops() {
    // Aeolus' selective dropping is a *signal*; corruption is noise. The
    // metrics must keep the two apart so the paper's drop-rate figures
    // stay meaningful under fault injection.
    let mut params = SchemeParams::new(0);
    params.faults = FaultPlan::new(3).with_loss(0.05, PacketFilter::Data, LinkFilter::All);
    let h = run_faulted(Scheme::ExpressPassAeolus, params, &[100_000; 7], ms(2000));
    let m = h.metrics();
    let corruption = m.drops_by_reason(DropReason::Corruption);
    let selective = m.drops_by_reason(DropReason::SelectiveDrop);
    assert!(corruption > 0, "5% data loss must register corruption drops");
    assert!(selective > 0, "a 7:1 incast must still trip selective dropping");
}

#[test]
fn every_scheme_survives_a_source_host_crash() {
    // One sender crashes at 100 µs and restarts at 600 µs, mid-incast. Its
    // flow is aborted on the spot (wiping in-flight transport state) and
    // relaunched at restart; everyone else keeps going. The degradation
    // ledger must show every flow settled — the crashed sender's flow as
    // restarted-then-completed, the rest as plain completions.
    for scheme in schemes_under_fire() {
        let mut params = SchemeParams::new(0);
        params.faults = FaultPlan::new(17).with_crash(us(100), us(600), 1);
        let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
        let flows = incast_flows(&h, &[120_000; 7]);
        h.schedule(&flows);
        let report = match h.run_degradation(ms(4000)) {
            Ok(r) => r,
            Err(r) => panic!("{}: {r}", scheme.name()),
        };
        assert_eq!(
            report.completed() + report.restarted(),
            7,
            "{}: {report}",
            scheme.name()
        );
        assert!(
            report.restarted() >= 1,
            "{}: the crashed sender's flow must restart, not silently survive — {report}",
            scheme.name()
        );
    }
}

#[test]
fn destination_crash_restarts_the_whole_incast() {
    // The incast *sink* dies. Every flow's receiver state is wiped, every
    // flow aborts with NodeCrash, and every one is relaunched when the host
    // comes back — nothing may hang, nothing may stay aborted.
    let mut params = SchemeParams::new(0);
    params.faults = FaultPlan::new(19).with_crash(us(100), us(600), 0);
    let mut h =
        SchemeBuilder::new(Scheme::ExpressPassAeolus).params(params).topology(testbed()).build();
    let flows = incast_flows(&h, &[200_000; 7]);
    h.schedule(&flows);
    let report = h.run_degradation(ms(4000)).expect("sink crash must not hang the incast");
    assert_eq!(report.restarted(), 7, "{report}");
    assert_eq!(report.hung() + report.aborted(), 0, "{report}");
    assert!(
        h.metrics().drops_by_reason(DropReason::NodeDown) > 0,
        "packets heading into the dead sink must die with the node-down taxonomy"
    );
}

#[test]
fn every_scheme_survives_an_arbiter_outage() {
    // A 400 µs control-plane outage: on Fastpass the arbiter host itself
    // goes down (its allocation state is wiped, queued requests stall or
    // die); on the credit-loop schemes the window is a credit blackout. No
    // workload flow is ever aborted for a control-plane fault — the retry
    // and stall-recovery paths must re-establish contact and finish
    // everything.
    for scheme in schemes_under_fire() {
        let mut params = SchemeParams::new(0);
        params.faults = FaultPlan::new(29).with_arbiter_outage(us(100), us(500));
        let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
        let flows = incast_flows(&h, &[60_000; 5]);
        h.schedule(&flows);
        let report = match h.run_degradation(ms(4000)) {
            Ok(r) => r,
            Err(r) => panic!("{}: {r}", scheme.name()),
        };
        assert_eq!(report.completed(), 5, "{}: {report}", scheme.name());
        assert_eq!(
            report.restarted() + report.aborted(),
            0,
            "{}: a control-plane outage must never abort or restart workload flows — {report}",
            scheme.name()
        );
    }
}

#[test]
fn crash_and_partition_together_still_settle() {
    // The harshest chaos cell as a direct test: a host crash overlapping a
    // pod partition. Everything must still settle — completed, restarted or
    // aborted-with-cause, never hung.
    for scheme in [Scheme::ExpressPassAeolus, Scheme::HomaAeolus, Scheme::Dctcp { rto: ms(10) }] {
        let mut params = SchemeParams::new(0);
        params.faults = FaultPlan::new(37)
            .with_crash(us(100), us(600), 1)
            .with_partition(us(150), us(550));
        let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
        let flows = incast_flows(&h, &[80_000; 7]);
        h.schedule(&flows);
        if let Err(report) = h.run_degradation(ms(4000)) {
            panic!("{}: {report}", scheme.name());
        }
    }
}

#[test]
fn node_fault_grammar_round_trips() {
    // The `--faults` grammar is the public interface to all of the above;
    // Display must emit exactly what FromStr accepts, stably.
    for spec in [
        "crash=1@100us..600us",
        "arbiter=120us..520us, partition=150us..550us, seed=9",
        "loss=0.05, crash=0@1ms..2ms, crash=3@250us..750us",
        "crash=2@100us..600us, arbiter=1ms..1500us, partition=2ms..2500us, seed=3",
    ] {
        let plan: FaultPlan = spec.parse().unwrap_or_else(|e| panic!("'{spec}': {e}"));
        let rendered = plan.to_string();
        let again: FaultPlan =
            rendered.parse().unwrap_or_else(|e| panic!("re-parse of '{rendered}': {e}"));
        assert_eq!(rendered, again.to_string(), "unstable round-trip for '{spec}'");
    }
}

#[test]
fn node_fault_grammar_rejects_malformed_specs() {
    for bad in [
        "crash=100us..600us",     // missing host index
        "crash=x@100us..600us",   // non-numeric index
        "crash=0@600us..100us",   // inverted window
        "crash=0@600us..600us",   // empty window
        "arbiter=0@1ms..2ms",     // arbiter takes no @host
        "partition=1@1ms..2ms",   // partition takes no @host
        "partition=2ms..1ms",     // inverted window
        "arbiter=1xs..2xs",       // bogus time unit
    ] {
        assert!(bad.parse::<FaultPlan>().is_err(), "'{bad}' must not parse");
    }
}

#[test]
fn watchdog_reports_stuck_flows_with_diagnostics() {
    // Kill 100% of everything: no flow can complete, and the watchdog must
    // say which ones are stuck and that they never got a byte through.
    let mut params = SchemeParams::new(0);
    params.faults = FaultPlan::new(1).with_loss(1.0, PacketFilter::Any, LinkFilter::All);
    let mut h =
        SchemeBuilder::new(Scheme::ExpressPassAeolus).params(params).topology(testbed()).build();
    let flows = incast_flows(&h, &[10_000; 2]);
    h.schedule(&flows);
    let report = h.run_watchdog(ms(50)).expect_err("nothing can complete under 100% loss");
    assert_eq!(report.stuck.len(), 2);
    let text = report.to_string();
    assert!(text.contains("2 flow(s) still incomplete"), "got: {text}");
    assert!(text.contains("never got a byte through"), "got: {text}");
}
