//! NDP cutting-payload (CP) queue.
//!
//! NDP switches keep a very short data queue (default 8 full packets). When
//! a data packet arrives to a full data queue its payload is *trimmed* and
//! the remaining header is placed in a strict-priority control queue together
//! with ACKs/NACKs/pulls, so the receiver learns of the loss within one RTT.
//! This requires switch hardware modifications (the paper's point: Aeolus
//! reproduces the effect with commodity RED/ECN instead).

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::packet::Packet;
use crate::units::Time;

/// Two-queue NDP port: priority control queue + packet-capped data queue
/// with payload trimming on overflow.
pub struct TrimmingQueue {
    control: ByteFifo,
    data: ByteFifo,
    /// Maximum number of full data packets queued before trimming (paper: 8).
    data_cap_pkts: usize,
    /// Cap on the control queue in bytes; beyond it even headers drop (rare).
    control_cap_bytes: u64,
    /// Count of packets trimmed at this port (exposed for stats).
    pub trimmed_count: u64,
}

impl TrimmingQueue {
    /// A trimming queue holding at most `data_cap_pkts` untrimmed packets.
    pub fn new(data_cap_pkts: usize, control_cap_bytes: u64) -> TrimmingQueue {
        TrimmingQueue {
            control: ByteFifo::new(),
            data: ByteFifo::new(),
            data_cap_pkts,
            control_cap_bytes,
            trimmed_count: 0,
        }
    }
}

impl QueueDisc for TrimmingQueue {
    fn enqueue(&mut self, mut pkt: Packet, _now: Time) -> EnqueueOutcome {
        let is_payload = pkt.is_data();
        if !is_payload {
            // Control / already-trimmed packets ride the priority queue.
            if self.control.bytes() + pkt.size as u64 > self.control_cap_bytes {
                return EnqueueOutcome::Dropped {
                    reason: DropReason::BufferFull,
                    pkt: Box::new(pkt),
                };
            }
            self.control.push(pkt);
            return EnqueueOutcome::Queued;
        }
        if self.data.len() >= self.data_cap_pkts {
            // Cutting payload: keep the header, lose the bytes.
            pkt.trim();
            self.trimmed_count += 1;
            if self.control.bytes() + pkt.size as u64 > self.control_cap_bytes {
                return EnqueueOutcome::Dropped {
                    reason: DropReason::BufferFull,
                    pkt: Box::new(pkt),
                };
            }
            self.control.push(pkt);
            return EnqueueOutcome::QueuedTrimmed;
        }
        self.data.push(pkt);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _now: Time) -> Poll {
        if let Some(pkt) = self.control.pop() {
            return Poll::Ready(pkt);
        }
        match self.data.pop() {
            Some(pkt) => Poll::Ready(pkt),
            None => Poll::Empty,
        }
    }

    fn bytes(&self) -> u64 {
        self.control.bytes() + self.data.bytes()
    }

    fn pkts(&self) -> usize {
        self.control.len() + self.data.len()
    }

    fn bands(&self, out: &mut Vec<(&'static str, u64)>) {
        out.push(("ctrl", self.control.bytes()));
        out.push(("data", self.data.bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{ctrl_pkt, data_pkt};
    use super::*;
    use crate::packet::{PacketKind, TrafficClass, MIN_PACKET_BYTES};

    fn queue() -> TrimmingQueue {
        TrimmingQueue::new(8, 1 << 20)
    }

    #[test]
    fn data_queued_until_cap_then_trimmed() {
        let mut q = queue();
        for i in 0..8 {
            assert!(matches!(
                q.enqueue(data_pkt(TrafficClass::Unscheduled, i), 0),
                EnqueueOutcome::Queued
            ));
        }
        match q.enqueue(data_pkt(TrafficClass::Unscheduled, 8), 0) {
            EnqueueOutcome::QueuedTrimmed => {}
            other => panic!("expected trim, got {other:?}"),
        }
        assert_eq!(q.trimmed_count, 1);
        assert_eq!(q.pkts(), 9, "trimmed header stays queued");
    }

    #[test]
    fn trimmed_headers_overtake_data() {
        let mut q = queue();
        for i in 0..8 {
            q.enqueue(data_pkt(TrafficClass::Unscheduled, i), 0);
        }
        q.enqueue(data_pkt(TrafficClass::Unscheduled, 100), 0);
        // The trimmed header (seq 100) must come out first.
        match q.poll(0) {
            Poll::Ready(p) => {
                assert_eq!(p.seq, 100);
                assert!(p.trimmed);
                assert_eq!(p.size, MIN_PACKET_BYTES);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Then the full data packets in order.
        match q.poll(0) {
            Poll::Ready(p) => {
                assert_eq!(p.seq, 0);
                assert!(!p.trimmed);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_packets_ride_priority_queue() {
        let mut q = queue();
        q.enqueue(data_pkt(TrafficClass::Scheduled, 0), 0);
        q.enqueue(ctrl_pkt(PacketKind::Pull, 1), 0);
        match q.poll(0) {
            Poll::Ready(p) => assert_eq!(p.kind, PacketKind::Pull),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn control_cap_eventually_drops() {
        let mut q = TrimmingQueue::new(8, 128);
        assert!(matches!(q.enqueue(ctrl_pkt(PacketKind::Pull, 0), 0), EnqueueOutcome::Queued));
        assert!(matches!(q.enqueue(ctrl_pkt(PacketKind::Pull, 1), 0), EnqueueOutcome::Queued));
        assert!(matches!(
            q.enqueue(ctrl_pkt(PacketKind::Pull, 2), 0),
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, .. }
        ));
    }
}
