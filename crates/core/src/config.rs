//! Aeolus configuration.

use aeolus_sim::units::{Rate, Time};
use aeolus_sim::{bdp_bytes, MIN_PACKET_BYTES};

/// How first-RTT losses are detected and recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Aeolus: per-packet ACKs + probe, retransmit once as scheduled.
    ProbeBased,
    /// Strawman used by the §5.5 priority-queueing comparison: a
    /// retransmission timeout of the given duration.
    Rto(Time),
}

/// Configuration of the Aeolus building block.
#[derive(Debug, Clone, Copy)]
pub struct AeolusConfig {
    /// Selective-dropping threshold at switches, bytes (paper default 6 KB).
    pub drop_threshold: u64,
    /// Per-port physical buffer, bytes (paper default 200 KB).
    pub port_buffer: u64,
    /// MTU payload bytes (paper: 1.5 KB wire MTU).
    pub mtu_payload: u32,
    /// Probe packet wire size (minimum Ethernet frame).
    pub probe_size: u32,
    /// Loss detection / recovery mode.
    pub recovery: RecoveryMode,
    /// Whether new flows burst unscheduled packets in the first RTT at all
    /// (disabled to model plain ExpressPass-style "wait for credit").
    pub precredit_burst: bool,
    /// §6 resilience extension: if the sender has heard *nothing* back (no
    /// credit/grant/pull, no ACK, no probe ACK) for this many base RTTs, it
    /// retransmits its request and probe — covering the extreme case where
    /// even the probe was dropped. 0 disables the retry.
    pub probe_retry_rtts: u32,
    /// Ablation knob: pre-credit burst budget as a fraction of the BDP
    /// (1.0 = the paper's one-BDP burst).
    pub burst_budget_frac: f64,
}

impl Default for AeolusConfig {
    fn default() -> Self {
        AeolusConfig {
            drop_threshold: 6_000,
            port_buffer: 200_000,
            mtu_payload: 1_460,
            probe_size: MIN_PACKET_BYTES,
            recovery: RecoveryMode::ProbeBased,
            precredit_burst: true,
            probe_retry_rtts: 20,
            burst_budget_frac: 1.0,
        }
    }
}

impl AeolusConfig {
    /// Bytes a new flow may burst pre-credit: one bandwidth-delay product of
    /// the host link (§3.1 "a BDP worth of unscheduled packets at line-rate").
    pub fn burst_budget(&self, line_rate: Rate, base_rtt: Time) -> u64 {
        let bdp = bdp_bytes(line_rate, base_rtt) as f64 * self.burst_budget_frac;
        (bdp as u64).max(self.mtu_payload as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeolus_sim::units::us;

    #[test]
    fn defaults_match_paper() {
        let c = AeolusConfig::default();
        assert_eq!(c.drop_threshold, 6_000, "6 KB = 4 packets");
        assert_eq!(c.port_buffer, 200_000);
        assert_eq!(c.probe_size, 64);
        assert_eq!(c.recovery, RecoveryMode::ProbeBased);
        assert!(c.precredit_burst);
        assert_eq!(c.probe_retry_rtts, 20);
    }

    #[test]
    fn burst_budget_is_bdp() {
        let c = AeolusConfig::default();
        // 100 Gbps x 4.5 us = 56.25 KB.
        assert_eq!(c.burst_budget(Rate::gbps(100), us(4) + 500_000), 56_250);
        // Never below one MTU, so tiny-RTT topologies still burst something.
        assert_eq!(c.burst_budget(Rate::mbps(1), us(1)), 1_460);
    }
}
