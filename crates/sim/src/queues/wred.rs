//! WRED (weighted RED) with packet colors — the paper's *first* switch
//! implementation option for selective dropping (§4.1).
//!
//! Commodity chips (Broadcom Trident/Tomahawk) support three packet colors
//! with independent drop thresholds in one queue. Aeolus marks scheduled and
//! unscheduled packets with different DSCP values; an ACL maps DSCP to
//! color; the *red* color (unscheduled) gets the tiny selective-dropping
//! threshold while *green* (scheduled) gets the full buffer.
//!
//! This module models that pipeline: a color classifier (here: the packet's
//! [`TrafficClass`], standing in for the DSCP→color ACL) plus per-color
//! thresholds. With the paper's configuration it makes byte-for-byte the
//! same drop decisions as the RED/ECN re-interpretation
//! ([`super::RedEcnQueue`]) — a unit test asserts the equivalence.

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::packet::{Packet, TrafficClass};
use crate::pool::{PacketPool, PacketRef};
use crate::units::Time;

/// Packet colors in the switch pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Committed traffic — highest drop threshold.
    Green,
    /// Excess but tolerated traffic.
    Yellow,
    /// Drop-first traffic.
    Red,
}

/// Per-color WRED drop thresholds (min = max, as Aeolus configures).
#[derive(Debug, Clone, Copy)]
pub struct WredProfile {
    /// Drop threshold for green packets (bytes).
    pub green: u64,
    /// Drop threshold for yellow packets (bytes).
    pub yellow: u64,
    /// Drop threshold for red packets (bytes).
    pub red: u64,
}

impl WredProfile {
    /// The Aeolus §4.1 configuration: red (unscheduled) at the selective
    /// threshold, green (scheduled) at the full buffer, yellow unused in
    /// between.
    pub fn aeolus(selective_threshold: u64, buffer: u64) -> WredProfile {
        WredProfile { green: buffer, yellow: buffer, red: selective_threshold }
    }
}

/// Single FIFO with per-color drop thresholds.
pub struct WredQueue {
    fifo: ByteFifo,
    profile: WredProfile,
    /// Physical buffer cap.
    cap_bytes: u64,
    /// DSCP→color classifier (the ACL stage). Default: unscheduled = red,
    /// everything else = green.
    classify: fn(&Packet) -> Color,
}

/// Default ACL: the Aeolus marking rule.
fn aeolus_acl(pkt: &Packet) -> Color {
    match pkt.class {
        TrafficClass::Unscheduled => Color::Red,
        TrafficClass::Scheduled | TrafficClass::Control => Color::Green,
    }
}

impl WredQueue {
    /// A WRED queue with the given profile and physical cap, using the
    /// Aeolus DSCP→color mapping.
    pub fn new(profile: WredProfile, cap_bytes: u64) -> WredQueue {
        WredQueue { fifo: ByteFifo::new(), profile, cap_bytes, classify: aeolus_acl }
    }

    /// Override the classifier (for tests / other marking schemes).
    pub fn with_classifier(mut self, classify: fn(&Packet) -> Color) -> WredQueue {
        self.classify = classify;
        self
    }

    fn threshold_for(&self, color: Color) -> u64 {
        match color {
            Color::Green => self.profile.green,
            Color::Yellow => self.profile.yellow,
            Color::Red => self.profile.red,
        }
    }
}

impl QueueDisc for WredQueue {
    fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, _now: Time) -> EnqueueOutcome {
        let sz = pool.get(pkt).size;
        if self.fifo.bytes() + sz as u64 > self.cap_bytes {
            return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt };
        }
        let color = (self.classify)(pool.get(pkt));
        if self.fifo.bytes() >= self.threshold_for(color) {
            return EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, pkt };
        }
        self.fifo.push(pkt, sz);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _pool: &mut PacketPool, _now: Time) -> Poll {
        match self.fifo.pop() {
            Some((pkt, _)) => Poll::Ready(pkt),
            None => Poll::Empty,
        }
    }

    fn bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn pkts(&self) -> usize {
        self.fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{ctrl_ref, data_ref};
    use super::super::RedEcnQueue;
    use super::*;
    use crate::packet::{FlowId, NodeId, PacketKind};

    fn queue() -> WredQueue {
        WredQueue::new(WredProfile::aeolus(6_000, 200_000), 200_000)
    }

    /// An unscheduled data packet whose wire size is exactly `size` bytes.
    fn sized_ref(pool: &mut PacketPool, size: u32, seq: u64) -> PacketRef {
        let payload = size - crate::packet::HEADER_BYTES;
        pool.insert(Packet::data(
            FlowId(1),
            NodeId(0),
            NodeId(1),
            seq,
            payload,
            TrafficClass::Unscheduled,
            1 << 20,
        ))
    }

    #[test]
    fn red_color_dropped_above_selective_threshold() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        for i in 0..4 {
            let r = data_ref(&mut pool, TrafficClass::Unscheduled, i);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        let r = data_ref(&mut pool, TrafficClass::Unscheduled, 4);
        assert!(matches!(
            q.enqueue(r, &mut pool, 0),
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. }
        ));
        // Green packets still pass.
        let g = data_ref(&mut pool, TrafficClass::Scheduled, 5);
        assert!(matches!(q.enqueue(g, &mut pool, 0), EnqueueOutcome::Queued));
        let c = ctrl_ref(&mut pool, PacketKind::Probe, 6);
        assert!(matches!(q.enqueue(c, &mut pool, 0), EnqueueOutcome::Queued));
    }

    #[test]
    fn wred_and_red_ecn_make_identical_drop_decisions() {
        // The paper's two §4.1 implementations must agree packet-for-packet
        // under the same arrival sequence.
        let mut pool = PacketPool::new();
        let mut wred = queue();
        let mut red = RedEcnQueue::new(6_000, 200_000);
        // A deterministic pseudo-random mix of classes and dequeues.
        let mut x = 12345u64;
        for i in 0..2_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let class = if x.is_multiple_of(3) { TrafficClass::Scheduled } else { TrafficClass::Unscheduled };
            let wr = data_ref(&mut pool, class, i);
            let wred_drop = match wred.enqueue(wr, &mut pool, 0) {
                EnqueueOutcome::Dropped { pkt, .. } => {
                    pool.free(pkt);
                    true
                }
                _ => false,
            };
            let rr = data_ref(&mut pool, class, i);
            let red_drop = match red.enqueue(rr, &mut pool, 0) {
                EnqueueOutcome::Dropped { pkt, .. } => {
                    pool.free(pkt);
                    true
                }
                _ => false,
            };
            assert_eq!(wred_drop, red_drop, "divergence at packet {i} ({class:?})");
            if x % 5 < 2 {
                let a = match wred.poll(&mut pool, 0) {
                    Poll::Ready(p) => {
                        pool.free(p);
                        true
                    }
                    _ => false,
                };
                let b = match red.poll(&mut pool, 0) {
                    Poll::Ready(p) => {
                        pool.free(p);
                        true
                    }
                    _ => false,
                };
                assert_eq!(a, b);
            }
            assert_eq!(wred.bytes(), red.bytes(), "occupancy divergence at {i}");
        }
    }

    #[test]
    fn custom_classifier_is_honored() {
        fn everything_red(_: &Packet) -> Color {
            Color::Red
        }
        let mut pool = PacketPool::new();
        let mut q = WredQueue::new(WredProfile::aeolus(3_000, 200_000), 200_000)
            .with_classifier(everything_red);
        let a = data_ref(&mut pool, TrafficClass::Scheduled, 0);
        q.enqueue(a, &mut pool, 0);
        let b = data_ref(&mut pool, TrafficClass::Scheduled, 1);
        q.enqueue(b, &mut pool, 0);
        // 3000 B queued >= red threshold: even "scheduled" drops now.
        let c = data_ref(&mut pool, TrafficClass::Scheduled, 2);
        assert!(matches!(q.enqueue(c, &mut pool, 0), EnqueueOutcome::Dropped { .. }));
    }

    #[test]
    fn physical_cap_binds_green_too() {
        let mut pool = PacketPool::new();
        let mut q = WredQueue::new(WredProfile::aeolus(6_000, 7_500), 7_500);
        for i in 0..5 {
            let r = data_ref(&mut pool, TrafficClass::Scheduled, i);
            q.enqueue(r, &mut pool, 0);
        }
        let r = data_ref(&mut pool, TrafficClass::Scheduled, 5);
        assert!(matches!(
            q.enqueue(r, &mut pool, 0),
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, .. }
        ));
    }

    // §4.1 boundary semantics — same pre-enqueue-occupancy rule as
    // RedEcnQueue, pinned here so the two implementations can't drift.

    #[test]
    fn occupancy_exactly_at_threshold_drops_red_color() {
        let mut pool = PacketPool::new();
        let mut q = WredQueue::new(WredProfile::aeolus(6_000, 200_000), 200_000);
        for i in 0..4 {
            let r = sized_ref(&mut pool, 1500, i);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        assert_eq!(q.bytes(), 6_000);
        let r = sized_ref(&mut pool, 64, 100);
        assert!(matches!(
            q.enqueue(r, &mut pool, 0),
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. }
        ));
    }

    #[test]
    fn occupancy_one_byte_below_threshold_admits() {
        let mut pool = PacketPool::new();
        let mut q = WredQueue::new(WredProfile::aeolus(6_000, 200_000), 200_000);
        for i in 0..3 {
            q.enqueue(sized_ref(&mut pool, 1500, i), &mut pool, 0);
        }
        q.enqueue(sized_ref(&mut pool, 1499, 3), &mut pool, 0);
        assert_eq!(q.bytes(), 5_999);
        let r = sized_ref(&mut pool, 64, 100);
        assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
    }

    #[test]
    fn mtu_packet_at_k_minus_one_overshoots_threshold() {
        let mut pool = PacketPool::new();
        let mut q = WredQueue::new(WredProfile::aeolus(6_000, 200_000), 200_000);
        for i in 0..3 {
            q.enqueue(sized_ref(&mut pool, 1500, i), &mut pool, 0);
        }
        q.enqueue(sized_ref(&mut pool, 1499, 3), &mut pool, 0);
        assert_eq!(q.bytes(), 5_999);
        let r = sized_ref(&mut pool, 1500, 100);
        assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        assert_eq!(q.bytes(), 7_499);
        let r2 = sized_ref(&mut pool, 64, 101);
        assert!(matches!(
            q.enqueue(r2, &mut pool, 0),
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. }
        ));
    }

    #[test]
    fn conforms_to_oracle_ledger_under_seeded_churn() {
        for seed in 0..8 {
            crate::queues::testutil::oracle_audit(
                || Box::new(WredQueue::new(WredProfile::aeolus(3_000, 9_000), 9_000)),
                seed,
                600,
            );
        }
    }
}
