//! Fastpass (SIGCOMM'14) — the *centralized-arbiter* branch of proactive
//! transport (§2.1 of the Aeolus paper: "Fastpass employs a centralized
//! arbiter to enforce a tight control over packet transmission time"), as an
//! extension beyond the paper's three receiver-driven baselines.
//!
//! Model: one designated host runs the [`ArbiterEndpoint`]. A new sender
//! asks the arbiter for timeslots; the arbiter allocates them greedily such
//! that no source transmits two slots at once and no destination receives
//! two slots at once — the zero-queue property. The sender then transmits
//! exactly on its schedule.
//!
//! The pre-credit phase is the round trip to the arbiter, so Aeolus applies
//! verbatim: in [`FirstRttMode::Aeolus`] the sender bursts droppable
//! unscheduled packets while its request is in flight, losses are detected
//! by probe/ACKs, and the retransmissions ride later-requested timeslots.
//!
//! Simplifications (documented in DESIGN.md): slot allocation is greedy
//! first-fit per (src, dst) rather than Fastpass' max-min matching, and path
//! assignment is left to the fabric (the paper's zero-queue argument is
//! exercised on single-switch and two-tier topologies where src/dst
//! exclusivity suffices).
//!
//! [`FirstRttMode::Aeolus`]: crate::common::FirstRttMode::Aeolus

use aeolus_core::PreCreditSender;
use aeolus_sim::units::Time;
use aeolus_sim::{
    Ctx, Endpoint, FlowDesc, FlowId, FlowMap, LossCause, NodeId, Packet, PacketKind, TimerTable,
    TrafficClass, TransportEvent,
};

use crate::common::{
    abort_peer_silent, ack_packet, data_packet, probe_ack_packet, probe_packet, BaseConfig,
    Tombstones,
};
use crate::receiver_table::RecvBook;

/// Fastpass tunables.
#[derive(Debug, Clone, Copy)]
pub struct FastpassConfig {
    /// Shared transport parameters.
    pub base: BaseConfig,
    /// The arbiter's node id.
    pub arbiter: NodeId,
    /// Maximum timeslots granted per request (pipelined batches).
    pub batch_slots: u32,
}

impl FastpassConfig {
    /// Defaults: batches of 64 slots.
    pub fn new(base: BaseConfig, arbiter: NodeId) -> FastpassConfig {
        FastpassConfig { base, arbiter, batch_slots: 64 }
    }
}

/// The centralized arbiter: allocates conflict-free timeslots.
pub struct ArbiterEndpoint {
    /// Slot duration (one MTU at host line rate); fixed at first request.
    slot: Time,
    mtu_wire: u32,
    /// Earliest free slot per transmitting host.
    src_free: FlowMap<NodeId, Time>,
    /// Earliest free slot per receiving host.
    dst_free: FlowMap<NodeId, Time>,
}

impl ArbiterEndpoint {
    /// A fresh arbiter for hosts with `mtu_wire`-byte full packets.
    pub fn new(mtu_wire: u32) -> ArbiterEndpoint {
        ArbiterEndpoint { slot: 0, mtu_wire, src_free: FlowMap::new(), dst_free: FlowMap::new() }
    }
}

impl Endpoint for ArbiterEndpoint {
    fn on_flow_arrival(&mut self, _flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        panic!("the arbiter host must not originate flows");
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if pkt.kind != PacketKind::Request {
            debug_assert!(false, "arbiter only speaks Request, got {:?}", pkt.kind);
            return;
        }
        if self.slot == 0 {
            self.slot = ctx.line_rate.serialize(self.mtu_wire as u64);
        }
        // `flow_size` carries the *remaining demand in slots* for requests
        // addressed to the arbiter; `seq` the first byte offset to cover.
        let slots = (pkt.flow_size as u32).max(1);
        // `path_tag` carries the true destination host id (the packet's
        // `dst` is the arbiter itself).
        let dst = NodeId(pkt.path_tag as u32);
        let src = pkt.src;
        // Greedy conflict-free allocation: the batch starts when both the
        // source uplink and destination downlink are free, no earlier than
        // one half-RTT from now (the reply must reach the sender first).
        let earliest = ctx.now + self.base_delay();
        let src_free = self.src_free.get(src).copied().unwrap_or(0);
        let dst_free = self.dst_free.get(dst).copied().unwrap_or(0);
        let start = earliest.max(src_free).max(dst_free);
        let end = start + slots as Time * self.slot;
        self.src_free.insert(src, end);
        self.dst_free.insert(dst, end);
        // Each slot authorizes one full packet on the wire: the arbiter is
        // the credit issuer in Fastpass.
        ctx.emit(TransportEvent::CreditIssue {
            flow: pkt.flow,
            bytes: slots as u64 * self.mtu_wire as u64,
        });
        let mut reply = Packet::control(
            pkt.flow,
            ctx.host,
            src,
            pkt.seq,
            PacketKind::Schedule { start, slots, stride: self.slot },
        );
        reply.priority = 0;
        ctx.send(reply);
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        // An arbiter crash loses the allocation ledgers. After restart the
        // arbiter re-learns load from fresh requests; forgetting the old
        // reservations is safe (worst case transient slot conflicts, i.e.
        // queueing — never stalls), and senders' request-retry backstops
        // re-ask for anything scheduled into the outage.
        self.slot = 0;
        self.src_free.clear();
        self.dst_free.clear();
    }
}

impl ArbiterEndpoint {
    /// Margin so a schedule never starts before its reply can arrive.
    fn base_delay(&self) -> Time {
        // One slot of margin per hop is plenty on the paper topologies; the
        // precise value only shifts schedules, never overlaps them.
        8 * self.slot.max(1)
    }
}

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    /// Transmit the next scheduled slot of a flow.
    Slot(FlowId),
    /// Re-request timeslots if the outstanding request (or its Schedule
    /// reply) was lost on the way — without this, a single lost arbiter
    /// round trip hangs the flow forever.
    RequestRetry(FlowId),
    /// Receiver-side stall scan: re-requests missing ranges from senders
    /// whose scheduled packets died on the wire.
    StallScan,
}

struct SendFlow {
    desc: FlowDesc,
    core: PreCreditSender,
    /// Remaining granted slots and their cadence.
    slots_left: u32,
    stride: Time,
    /// Whether a request is currently outstanding at the arbiter.
    requesting: bool,
    completed: bool,
    /// Most recent loss signal, for retransmission attribution.
    last_loss: Option<LossCause>,
    /// Consecutive request retries without a Schedule reply, capped — each
    /// doubles the next retry interval (reset when a Schedule arrives).
    retry_fires: u32,
    /// Last time the *receiver* showed signs of life (ACK or Resend — not
    /// the arbiter's Schedules, which keep flowing while the receiver is
    /// partitioned away). Peer-death watchdog clock.
    last_heard: Time,
}

struct RecvFlow {
    sender: NodeId,
    book: RecvBook,
    /// Last time any data packet of this flow arrived.
    last_arrival: Time,
    /// Consecutive stall resends without progress, capped (backoff).
    stall_strikes: u32,
    /// Last *real* arrival — never rewound by the stall scan's back-off, so
    /// it measures true peer silence for the death watchdog.
    last_progress: Time,
}

/// The per-host Fastpass endpoint.
pub struct FastpassEndpoint {
    cfg: FastpassConfig,
    send_flows: FlowMap<FlowId, SendFlow>,
    recv_flows: FlowMap<FlowId, RecvFlow>,
    timers: TimerTable<TimerKind>,
    stall_scan_armed: bool,
    dead: Tombstones,
}

impl FastpassEndpoint {
    /// A fresh endpoint.
    pub fn new(cfg: FastpassConfig) -> FastpassEndpoint {
        FastpassEndpoint {
            cfg,
            send_flows: FlowMap::new(),
            recv_flows: FlowMap::new(),
            timers: TimerTable::new(),
            stall_scan_armed: false,
            dead: Tombstones::new(),
        }
    }

    /// Peer-silence abort (either role): drop local state, bury the id and
    /// record the abort.
    fn give_up_on(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow);
        self.recv_flows.remove(flow);
        self.dead.bury(flow);
        abort_peer_silent(flow, ctx);
    }

    /// Base interval after which an unanswered arbiter request is retried;
    /// generous (several RTTs) so queueing is never mistaken for loss.
    fn retry_base(&self) -> Time {
        (8 * self.cfg.base.base_rtt.max(1)).max(aeolus_sim::units::ms(2))
    }

    /// Interval after which an incomplete receive flow with no arrivals is
    /// deemed stalled and its gaps re-requested.
    fn stall_after(&self) -> Time {
        (8 * self.cfg.base.base_rtt.max(1)).max(aeolus_sim::units::ms(1))
    }

    fn request_slots(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let arbiter = self.cfg.arbiter;
        let batch = self.cfg.batch_slots;
        let retry_base = self.retry_base();
        let retry_in = if let Some(sf) = self.send_flows.get_mut(flow) {
            if sf.requesting || sf.completed || !sf.core.has_work() {
                return;
            }
            sf.requesting = true;
            let mut req = Packet::control(flow, ctx.host, arbiter, 0, PacketKind::Request);
            // Demand in slots; true destination rides in path_tag.
            let mtu = self.cfg.base.mtu_payload as u64;
            let rough_need = sf.desc.size.div_ceil(mtu) as u32;
            req.flow_size = rough_need.min(batch) as u64;
            req.path_tag = sf.desc.dst.0 as u64;
            ctx.send(req);
            retry_base << sf.retry_fires.min(6)
        } else {
            return;
        };
        ctx.set_timer_in_with(retry_in, self.timers.arm(TimerKind::RequestRetry(flow)));
    }

    /// The request-retry backstop: if the request (or its Schedule reply)
    /// vanished, clear the stuck `requesting` latch and re-ask with capped
    /// exponential backoff.
    fn on_request_retry(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let pcfg = self.cfg.base;
        let mut give_up = false;
        let stuck = match self.send_flows.get_mut(flow) {
            Some(sf) if sf.requesting && !sf.completed => {
                if pcfg.peer_silent(sf.last_heard, ctx.now) {
                    // The receiver has shown no sign of life past the death
                    // threshold despite backed-off re-requests: abort
                    // instead of asking forever.
                    give_up = true;
                    false
                } else {
                    sf.requesting = false;
                    sf.retry_fires = (sf.retry_fires + 1).min(6);
                    ctx.metrics.note_timeout(flow);
                    true
                }
            }
            _ => false,
        };
        if give_up {
            self.give_up_on(flow, ctx);
            return;
        }
        if stuck {
            self.request_slots(flow, ctx);
        }
    }

    fn arm_stall_scan(&mut self, ctx: &mut Ctx<'_>) {
        if self.stall_scan_armed {
            return;
        }
        self.stall_scan_armed = true;
        let delay = self.stall_after();
        ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::StallScan));
    }

    fn on_stall_scan(&mut self, ctx: &mut Ctx<'_>) {
        self.stall_scan_armed = false;
        let stall_after = self.stall_after();
        let mut any_incomplete = false;
        let mut resends: Vec<(FlowId, NodeId, Vec<(u64, u64)>)> = Vec::new();
        // No receiver-side silence abort here: in Fastpass a silent sender
        // may merely be starved by arbiter (Schedule) losses, not dead, so
        // "no data" is ambiguous on this side. The sender's watchdog — whose
        // clock only the *receiver's* signals refresh — owns the abort; the
        // backed-off resends below keep a live sender's clock fresh.
        for (id, rf) in self.recv_flows.iter_mut() {
            if rf.book.is_complete() {
                continue;
            }
            any_incomplete = true;
            let size = match rf.book.core.size() {
                Some(s) => s,
                None => continue,
            };
            let wait = stall_after << rf.stall_strikes.min(4);
            if ctx.now.saturating_sub(rf.last_arrival) >= wait {
                let missing: Vec<(u64, u64)> =
                    rf.book.core.missing_below(size).into_iter().take(8).collect();
                if !missing.is_empty() {
                    ctx.metrics.note_timeout(id);
                    rf.last_arrival = ctx.now; // back off one period
                    rf.stall_strikes = (rf.stall_strikes + 1).min(4);
                    resends.push((id, rf.sender, missing));
                }
            }
        }
        // Slot order is not key order: sort so resend emission matches the
        // seed's BTreeMap scan order exactly.
        resends.sort_unstable_by_key(|&(id, _, _)| id);
        for (id, sender, missing) in resends {
            for (s, e) in missing {
                let r = Packet::control(id, ctx.host, sender, s, PacketKind::Resend { end: e });
                ctx.send(r);
            }
        }
        if any_incomplete {
            self.stall_scan_armed = true;
            ctx.set_timer_in_with(stall_after, self.timers.arm(TimerKind::StallScan));
        }
    }

    /// Fire one scheduled slot: send the next chunk.
    fn on_slot(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let mtu = self.cfg.base.mtu_payload;
        let mut need_more = false;
        if let Some(sf) = self.send_flows.get_mut(flow) {
            sf.slots_left = sf.slots_left.saturating_sub(1);
            if let Some(chunk) = sf.core.next_scheduled_chunk(mtu) {
                let pkt = data_packet(
                    &sf.desc,
                    chunk.seq,
                    chunk.len,
                    TrafficClass::Scheduled,
                    chunk.retransmit,
                );
                if chunk.retransmit {
                    let cause = if chunk.last_resort {
                        LossCause::LastResort
                    } else {
                        sf.last_loss.unwrap_or(LossCause::Probe)
                    };
                    ctx.emit(TransportEvent::Retransmit {
                        flow,
                        bytes: chunk.len as u64,
                        cause,
                    });
                }
                ctx.send(pkt);
            }
            if sf.slots_left > 0 {
                let stride = sf.stride;
                ctx.set_timer_in_with(stride, self.timers.arm(TimerKind::Slot(flow)));
            } else {
                need_more = sf.core.has_work();
            }
        }
        if need_more {
            self.request_slots(flow, ctx);
        }
    }
}

impl Endpoint for FastpassEndpoint {
    fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
        let mode = self.cfg.base.mode;
        let budget = if mode.bursts() {
            self.cfg.base.aeolus.burst_budget(ctx.line_rate, self.cfg.base.base_rtt)
        } else {
            0
        };
        let mut core = PreCreditSender::new(flow.size, budget);
        let mtu = self.cfg.base.mtu_payload;
        // Pre-credit burst while the arbiter round-trip is in flight.
        let mut burst_sent = 0u64;
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStart { flow: flow.id, bytes: budget.min(flow.size) });
        }
        while let Some(chunk) = core.next_burst_chunk(mtu) {
            let mut pkt = data_packet(&flow, chunk.seq, chunk.len, TrafficClass::Unscheduled, false);
            mode.stamp_unscheduled(&mut pkt, 0, 7);
            burst_sent += chunk.len as u64;
            ctx.send(pkt);
        }
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStop { flow: flow.id, sent: burst_sent });
        }
        if let Some(ps) = core.end_burst() {
            if mode.probe_recovery() {
                ctx.send(probe_packet(&flow, ps));
            }
        }
        self.send_flows.insert(
            flow.id,
            SendFlow {
                desc: flow,
                core,
                slots_left: 0,
                stride: 0,
                requesting: false,
                completed: false,
                last_loss: None,
                retry_fires: 0,
                last_heard: ctx.now,
            },
        );
        self.request_slots(flow.id, ctx);
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if self.dead.holds(pkt.flow) {
            // Stale wire traffic for an aborted flow must not resurrect it.
            return;
        }
        match pkt.kind {
            PacketKind::Schedule { start, slots, stride } => {
                let fire_first = {
                    let sf = match self.send_flows.get_mut(pkt.flow) {
                        Some(sf) => sf,
                        None => return,
                    };
                    sf.requesting = false;
                    sf.retry_fires = 0;
                    sf.slots_left = slots;
                    sf.stride = stride;
                    ctx.emit(TransportEvent::CreditReceipt {
                        flow: pkt.flow,
                        bytes: slots as u64 * self.cfg.base.mtu_payload as u64,
                    });
                    start.saturating_sub(ctx.now)
                };
                ctx.set_timer_in_with(fire_first, self.timers.arm(TimerKind::Slot(pkt.flow)));
            }
            PacketKind::Data => {
                let now = ctx.now;
                let rf = self.recv_flows.get_or_insert_with(pkt.flow, || RecvFlow {
                    sender: pkt.src,
                    book: RecvBook::new(),
                    last_arrival: now,
                    stall_strikes: 0,
                    last_progress: now,
                });
                rf.book.learn_size(pkt.flow_size);
                rf.last_arrival = now;
                rf.last_progress = now;
                rf.stall_strikes = 0;
                let unscheduled = pkt.class == TrafficClass::Unscheduled;
                let v = rf.book.on_data(&pkt, ctx);
                let sender = rf.sender;
                self.arm_stall_scan(ctx);
                if self.cfg.base.mode.probe_recovery() && unscheduled {
                    if let Some((s, e)) = v.acked_range {
                        ctx.send(ack_packet(pkt.flow, ctx.host, sender, s, e));
                    }
                }
                if v.completed {
                    ctx.send(ack_packet(pkt.flow, ctx.host, sender, 0, pkt.flow_size));
                }
            }
            PacketKind::Probe => {
                let now = ctx.now;
                let rf = self.recv_flows.get_or_insert_with(pkt.flow, || RecvFlow {
                    sender: pkt.src,
                    book: RecvBook::new(),
                    last_arrival: now,
                    stall_strikes: 0,
                    last_progress: now,
                });
                rf.book.core.on_probe(pkt.seq, pkt.flow_size);
                let sender = rf.sender;
                ctx.send(probe_ack_packet(pkt.flow, ctx.host, sender, pkt.seq));
                self.arm_stall_scan(ctx);
            }
            PacketKind::Resend { end } => {
                // Receiver-detected stall: a scheduled packet died on the
                // wire. Requeue the range and ask the arbiter for slots to
                // carry it.
                let mut need_more = false;
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.last_heard = ctx.now;
                    let lost = sf.core.requeue_lost(pkt.seq, end);
                    if lost > 0 {
                        sf.last_loss = Some(LossCause::Stall);
                        ctx.emit(TransportEvent::LossDetected {
                            flow: pkt.flow,
                            bytes: lost,
                            cause: LossCause::Stall,
                        });
                    }
                    need_more = sf.slots_left == 0 && sf.core.has_work();
                }
                if need_more {
                    self.request_slots(pkt.flow, ctx);
                }
            }
            PacketKind::Ack { of_probe, end } => {
                let mut need_more = false;
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.last_heard = ctx.now;
                    let (lost, cause) = if of_probe {
                        let lost = sf.core.on_probe_ack();
                        // Losses revealed: they may need timeslots.
                        need_more = sf.slots_left == 0 && sf.core.has_work();
                        (lost, LossCause::Probe)
                    } else if pkt.seq == 0 && end >= sf.desc.size {
                        sf.completed = true;
                        sf.core.on_ack_no_infer(0, end);
                        (0, LossCause::SackGap)
                    } else if self.cfg.base.sack_inference() {
                        (sf.core.on_ack(pkt.seq, end), LossCause::SackGap)
                    } else {
                        sf.core.on_ack_no_infer(pkt.seq, end);
                        (0, LossCause::SackGap)
                    };
                    if lost > 0 {
                        sf.last_loss = Some(cause);
                        ctx.emit(TransportEvent::LossDetected {
                            flow: pkt.flow,
                            bytes: lost,
                            cause,
                        });
                    }
                }
                if need_more {
                    self.request_slots(pkt.flow, ctx);
                }
            }
            other => {
                debug_assert!(false, "unexpected packet kind for Fastpass: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match self.timers.fire(token) {
            Some(TimerKind::Slot(f)) => self.on_slot(f, ctx),
            Some(TimerKind::RequestRetry(f)) => self.on_request_retry(f, ctx),
            Some(TimerKind::StallScan) => self.on_stall_scan(ctx),
            None => {}
        }
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        // A host crash wipes every byte of transport state; the timer
        // generation bump makes all queued tokens stale.
        self.send_flows.clear();
        self.recv_flows.clear();
        self.timers.clear();
        self.stall_scan_armed = false;
        self.dead.clear();
    }

    fn on_flow_abort(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
        self.dead.bury(flow.id);
    }

    fn on_flow_restart(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.dead.raise(flow.id);
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::FirstRttMode;
    use aeolus_core::AeolusConfig;
    use aeolus_sim::units::us;

    #[test]
    fn config_defaults() {
        let base = BaseConfig {
            mtu_payload: 1460,
            base_rtt: us(14),
            aeolus: AeolusConfig::default(),
            mode: FirstRttMode::Aeolus,
            disable_sack: false,
            peer_silence: 0,
        };
        let cfg = FastpassConfig::new(base, NodeId(9));
        assert_eq!(cfg.batch_slots, 64);
        assert_eq!(cfg.arbiter, NodeId(9));
    }
}
