//! Network nodes: switches and hosts.

use crate::endpoint::Endpoint;
use crate::packet::NodeId;
use crate::port::Port;
use crate::routing::RouteTable;
use crate::units::Time;

/// What a node is.
// One instance per node; the size skew between the routing-table-bearing
// switch variant and the host variant is irrelevant at that cardinality.
#[allow(clippy::large_enum_variant)]
pub enum NodeKind {
    /// A switch holding a routing table.
    Switch {
        /// Destination-indexed ECMP next-hop table.
        table: RouteTable,
    },
    /// A host running a transport endpoint on a single NIC (port 0).
    Host {
        /// The installed endpoint; `None` only transiently while a handler
        /// runs, or before installation.
        endpoint: Option<Box<dyn Endpoint>>,
    },
}

/// A node: identity, ports, ingress processing delay, and its kind.
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Egress ports. Hosts have exactly one (the NIC).
    pub ports: Vec<Port>,
    /// Fixed processing delay applied to every packet arriving at this node
    /// (switching delay for switches, host stack delay for hosts).
    pub ingress_delay: Time,
    /// Switch or host.
    pub kind: NodeKind,
}

impl Node {
    /// True if this node is a host.
    pub fn is_host(&self) -> bool {
        matches!(self.kind, NodeKind::Host { .. })
    }
}
