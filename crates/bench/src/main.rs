//! `aeolus-bench` — the repo's benchmark entry point.
//!
//! Runs the engine microbenches (timing wheel vs the reference binary-heap
//! scheduler, on a synthetic timer stream and a full incast simulation) plus
//! a macro bench (one quick-scale paper figure, serial and parallel), prints
//! a summary and writes a JSON report.
//!
//! ```text
//! aeolus-bench [--out PATH] [--engine-only]   # default out: results/bench.json
//! AEOLUS_BENCH_ITERS=30 aeolus-bench          # more measured iterations
//! ```
//!
//! `--engine-only` skips the macro (paper-figure) suite — used by the CI
//! overhead gate, which only compares the engine kernels.

use aeolus_bench::alloc_counter::CountingAlloc;
use aeolus_bench::harness::{write_json, BenchConfig, Suite};
use aeolus_bench::trajectory::{find_all_snapshots, trajectory_delta};
use aeolus_bench::{
    batched_dequeue, boxed_churn, btreemap_churn, flowmap_churn, incast_sim_events,
    incast_sim_events_recorded, pool_churn, route_lookup, steady_incast_alloc_window,
    timer_stream_events,
};
use aeolus_experiments::{fig09, set_jobs, take_events_processed, Scale};
use aeolus_sim::event::SchedulerKind;

// Counting shim so the `alloc` suite can report allocator hits; one relaxed
// atomic increment per allocation, invisible at bench resolution.
#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn macro_config() -> BenchConfig {
    // Macro iterations take seconds each; default to fewer of them unless
    // the caller pinned counts explicitly.
    let cfg = BenchConfig::from_env();
    BenchConfig {
        warmup: if std::env::var("AEOLUS_BENCH_WARMUP").is_ok() { cfg.warmup } else { 1 },
        iters: if std::env::var("AEOLUS_BENCH_ITERS").is_ok() { cfg.iters } else { 3 },
    }
}

fn main() {
    let mut out = String::from("results/bench.json");
    let mut snapshot: Option<String> = None;
    let mut engine_only = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--out" => {
                out = iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("--out wants a path");
                    std::process::exit(2);
                })
            }
            "--snapshot" => {
                snapshot = Some(iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("--snapshot wants a path (e.g. BENCH_7.json at the repo root)");
                    std::process::exit(2);
                }))
            }
            "--engine-only" => engine_only = true,
            other => {
                eprintln!(
                    "usage: aeolus-bench [--out PATH] [--snapshot PATH] [--engine-only]   \
                     (unknown arg '{other}')"
                );
                std::process::exit(2);
            }
        }
    }

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host: {cpus} cpu(s) available to this process");
    println!();

    const TIMER_EVENTS: u64 = 200_000;
    let mut engine = Suite::new("engine");
    engine.bench("timer_stream_200k_wheel", || {
        timer_stream_events(SchedulerKind::TimingWheel, TIMER_EVENTS)
    });
    engine.bench("timer_stream_200k_heap", || {
        timer_stream_events(SchedulerKind::BinaryHeap, TIMER_EVENTS)
    });
    engine.bench("incast_sim_wheel", || incast_sim_events(SchedulerKind::TimingWheel, 30_000, 3));
    engine.bench("incast_sim_heap", || incast_sim_events(SchedulerKind::BinaryHeap, 30_000, 3));
    engine.bench("incast_sim_wheel_recorded", || {
        incast_sim_events_recorded(SchedulerKind::TimingWheel, 30_000, 3)
    });

    // Hot-path structure kernels: the per-event data structures the engine
    // and transports lean on (slab flow state, CSR route lookup, cached-size
    // port dequeue), each with its honest pre-refactor baseline where one
    // exists.
    let mut hotpath = Suite::new("hotpath");
    hotpath.bench("flowmap_churn_1m", || flowmap_churn(1_000_000, 64));
    hotpath.bench("btreemap_churn_1m", || btreemap_churn(1_000_000, 64));
    hotpath.bench("route_lookup_1m", || route_lookup(1_000_000));
    hotpath.bench("batched_dequeue_1m", || batched_dequeue(1_000_000));

    let mut alloc = Suite::new("alloc");
    alloc.bench("pool_churn_64x1m", || pool_churn(1_000_000, 64));
    alloc.bench("boxed_churn_64x1m", || boxed_churn(1_000_000, 64));
    alloc.bench("steady_incast_window", steady_incast_alloc_window);

    let mut figures = Suite::with_config("macro", macro_config());
    if !engine_only {
        take_events_processed(); // reset the events counter
        set_jobs(1);
        figures.bench("fig09_quick_serial", || {
            let r = fig09::run(Scale::Quick);
            std::hint::black_box(r.sections.len());
            take_events_processed()
        });
        if cpus < 2 {
            // A parallel fan-out on one core measures thread overhead, not
            // fan-out; skip it rather than record a misleading sample.
            println!(
                "macro/fig09_quick_parallel                   skipped: host has {cpus} cpu(s), \
                 parallel fan-out needs >= 2"
            );
        } else {
            set_jobs(0); // auto: all cores
            figures.bench("fig09_quick_parallel", || {
                let r = fig09::run(Scale::Quick);
                std::hint::black_box(r.sections.len());
                take_events_processed()
            });
        }
    }

    let speedup = |a: &Suite, fast: &str, slow: &str| {
        let f = a.sample(fast).map(|s| s.units_per_sec()).unwrap_or(0.0);
        let s = a.sample(slow).map(|s| s.units_per_sec()).unwrap_or(f64::INFINITY);
        f / s
    };
    println!();
    println!(
        "timer stream: wheel is {:.2}x the heap scheduler (events/s)",
        speedup(&engine, "timer_stream_200k_wheel", "timer_stream_200k_heap")
    );
    println!(
        "incast sim:   wheel is {:.2}x the heap scheduler (events/s)",
        speedup(&engine, "incast_sim_wheel", "incast_sim_heap")
    );
    println!(
        "tracing cost: NullTracer run is {:.2}x the RecordingTracer run (events/s)",
        speedup(&engine, "incast_sim_wheel", "incast_sim_wheel_recorded")
    );
    println!(
        "flow state:   slab FlowMap is {:.2}x BTreeMap churn (ops/s)",
        speedup(&hotpath, "flowmap_churn_1m", "btreemap_churn_1m")
    );
    println!(
        "packet churn: pool is {:.2}x boxed alloc/free (ops/s)",
        speedup(&alloc, "pool_churn_64x1m", "boxed_churn_64x1m")
    );
    println!(
        "steady-state incast window: {} allocations (pooled engine target: 0)",
        alloc.sample("steady_incast_window").map(|s| s.units).unwrap_or(u64::MAX)
    );
    if !engine_only {
        match figures.sample("fig09_quick_parallel") {
            Some(par) => {
                let serial =
                    figures.sample("fig09_quick_serial").map(|s| s.median_ns).unwrap_or(0);
                println!(
                    "fig09 quick:  parallel fan-out is {:.2}x serial (wall time)",
                    serial as f64 / par.median_ns as f64
                );
            }
            None => println!("fig09 quick:  parallel fan-out not measured on a {cpus}-cpu host"),
        }
    }

    let suites = [&engine, &hotpath, &alloc, &figures];
    match write_json(&suites, &out) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
    }
    // BENCH trajectory: immutable per-PR snapshots (BENCH_5.json,
    // BENCH_6.json, ...) accumulate at the *repo root*, next to README.md,
    // so the performance history is discoverable without knowing about
    // results/. A --snapshot path given with a directory component (the old
    // results/BENCH_<n>.json convention) still works, but a root-level copy
    // is emitted alongside it so the trajectory never fragments again.
    if let Some(snap) = snapshot {
        match write_json(&suites, &snap) {
            Ok(()) => println!("wrote snapshot {snap}"),
            Err(e) => {
                eprintln!("failed to write snapshot {snap}: {e}");
                std::process::exit(1);
            }
        }
        let base = std::path::Path::new(&snap)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| snap.clone());
        if base != snap {
            match write_json(&suites, &base) {
                Ok(()) => println!("wrote repo-root snapshot copy {base}"),
                Err(e) => eprintln!("failed to write repo-root snapshot {base}: {e}"),
            }
        }
    }

    // Print the full trajectory — every repo-root snapshot chained into
    // this run, per bench — so a cross-PR regression is visible right here
    // instead of requiring a manual diff of snapshot files.
    println!();
    print!("{}", trajectory_delta(&find_all_snapshots(), &suites));
}
