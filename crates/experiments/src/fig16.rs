//! Figure 16 — average bottleneck-link utilization over the first RTT versus
//! the selective-dropping threshold, for varying traffic demand (fan-in N).
//! The paper's finding: 4 packets (6 KB) already sustains full throughput
//! under every demand.

use aeolus_core::AeolusConfig;
use aeolus_stats::{f3, TextTable};
use aeolus_sim::{FlowDesc, FlowId};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams};

use crate::fig15::THRESHOLDS;
use crate::report::Report;
use crate::scale::Scale;
use crate::topos::many_to_one;

/// First-RTT utilization of the bottleneck for one (threshold, fan-in).
pub fn first_rtt_utilization(threshold: u64, fan_in: usize) -> f64 {
    let mut params = SchemeParams::new(0);
    params.aeolus = AeolusConfig { drop_threshold: threshold, ..AeolusConfig::default() };
    params.port_buffer = 500_000;
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).params(params).topology(many_to_one(fan_in + 1)).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..fan_in)
        .map(|i| FlowDesc {
            id: FlowId(i as u64 + 1),
            src: hosts[i + 1],
            dst: hosts[0],
            size: 200_000,
            start: (i as u64) * 300_000, // light jitter
        })
        .collect();
    h.schedule(&flows);
    // Measure transmitted bytes on the bottleneck during the first RTT,
    // skipping the one-way latency before the burst can possibly arrive.
    let rtt = h.params.base_rtt;
    let lead = h.topo.base_rtt / 2;
    let (sw, port) = h.topo.host_ingress[0];
    h.topo.net.run_until(lead);
    let before = h.topo.net.port(sw, port).stats.bytes_tx;
    h.topo.net.run_until(lead + rtt);
    let after = h.topo.net.port(sw, port).stats.bytes_tx;
    let cap = h.topo.host_rate.bytes_in(rtt) as f64;
    (after - before) as f64 / cap
}

/// Fan-in degrees swept.
pub fn fan_ins(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![2],
        Scale::Quick => vec![1, 4, 16],
        Scale::Full => vec![1, 2, 4, 8, 16, 32],
    }
}

/// Run Figure 16.
pub fn run(scale: Scale) -> Report {
    let ns = fan_ins(scale);
    let mut cells = Vec::new();
    for &k in &THRESHOLDS {
        for &n in &ns {
            cells.push((k, n));
        }
    }
    let utils = crate::runner::parallel_map(&cells, |&(k, n)| first_rtt_utilization(k, n));
    let mut utils = utils.iter();
    let mut header = vec!["threshold".to_string()];
    header.extend(ns.iter().map(|n| format!("N={n}")));
    let mut table = TextTable::new(header);
    for &k in &THRESHOLDS {
        let mut row = vec![format!("{}KB", k as f64 / 1000.0)];
        for _ in &ns {
            row.push(f3(*utils.next().expect("one cell per pair")));
        }
        table.row(row);
    }
    let mut r = Report::new();
    r.section("Figure 16: first-RTT bottleneck utilization vs threshold", table);
    r.note("paper: a 6KB (4-packet) threshold is enough for full first-RTT throughput at every demand");
    r
}
