//! Property-based cross-crate invariants: for random small scenarios on any
//! scheme, every flow completes, delivery is exact, and the full conformance
//! oracle ([`aeolus::sim::CheckedTracer`]) holds at every event — queue
//! occupancy ledgers, drop legality (selective dropping never touches
//! protected packets), transmitter causality, byte conservation, and the
//! per-scheme protocol checks (credit conservation, one-BDP burst budget,
//! retransmit pairing).
//!
//! Seeded-loop fuzzing over [`SimRng`]: each case is reproducible from the
//! fixed seed and the printed case index. The oracle replaces the old ad-hoc
//! end-of-run drop accounting: a violation now panics at the first bad event
//! with flow/port context instead of surfacing as a corrupted aggregate.

use aeolus::prelude::*;
use aeolus::sim::topology::LinkParams;
use aeolus::sim::SimRng;

/// All fourteen schemes the registry exposes (Fastpass variants included —
/// the harness reserves their arbiter host).
fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::ExpressPass,
        Scheme::ExpressPassAeolus,
        Scheme::ExpressPassOracle,
        Scheme::ExpressPassPrioQueue { rto: ms(10) },
        Scheme::Homa { rto: ms(10) },
        Scheme::HomaAeolus,
        Scheme::HomaOracle,
        Scheme::Ndp,
        Scheme::NdpAeolus,
        Scheme::PHost { rto: ms(10) },
        Scheme::PHostAeolus,
        Scheme::Dctcp { rto: ms(10) },
        Scheme::Fastpass,
        Scheme::FastpassAeolus,
    ]
}

fn pick_scheme(rng: &mut SimRng) -> Scheme {
    let schemes = all_schemes();
    schemes[rng.index(schemes.len())]
}

#[test]
fn random_scenarios_deliver_exactly_once() {
    let mut rng = SimRng::seed_from_u64(0x1dea1);
    for case in 0..24 {
        let scheme = pick_scheme(&mut rng);
        // Up to 6 flows with arbitrary sizes and staggered starts.
        let n_specs = 1 + rng.index(5);
        let flow_specs: Vec<(u64, u64)> =
            (0..n_specs).map(|_| (1 + rng.below(199_999), rng.below(50))).collect();
        let seed = rng.below(1000);
        let spec = TopoSpec::SingleSwitch {
            hosts: 8,
            link: LinkParams::uniform(Rate::gbps(10), us(3)),
        };
        // The conformance oracle rides the whole run: any queue-ledger,
        // drop-legality, causality, conservation or protocol violation
        // panics at the first bad event, naming scheme/case via the panic
        // context below.
        let mut h = SchemeBuilder::new(scheme).topology(spec).build_checked();
        let hosts = h.hosts().to_vec();
        let n = hosts.len() as u64;
        let flows: Vec<FlowDesc> = flow_specs
            .iter()
            .enumerate()
            .map(|(i, &(size, start_us))| FlowDesc {
                id: FlowId(i as u64 + 1),
                src: hosts[(1 + (i as u64 + seed) % (n - 1)) as usize],
                dst: hosts[((i as u64 + seed + 3) % n) as usize],
                size,
                start: us(start_us),
            })
            .filter(|f| f.src != f.dst)
            .collect();
        if flows.is_empty() {
            continue;
        }
        h.schedule(&flows);
        let done = h.run(ms(2000));
        let m = h.metrics();

        // 1. Everything completes.
        assert!(
            done,
            "case {case} {}: {}/{} complete",
            scheme.name(),
            m.completed_count(),
            m.flow_count()
        );
        // 2. Delivery is exact: every byte exactly once at the app layer...
        for r in m.flows() {
            assert_eq!(r.delivered, r.desc.size, "case {case} {}", scheme.name());
            assert!(r.fct().unwrap() > 0, "case {case} {}", scheme.name());
        }
        // ...and the oracle's wire-level delivery ranges agree: app-level
        // completion cannot outrun what the network actually carried.
        h.topo.net.tracer().assert_flows_complete(m);
        // 3. Efficiency accounting is sane.
        let eff = m.transfer_efficiency();
        assert!(eff > 0.0 && eff <= 1.0 + 1e-9, "case {case}: efficiency {eff}");
        assert!(m.payload_delivered <= m.payload_sent, "case {case}");
    }
}

#[test]
fn fcts_are_at_least_ideal() {
    let mut rng = SimRng::seed_from_u64(0xfc7);
    // Every scheme at least once, plus random (scheme, size) pairs.
    let mut cases: Vec<(Scheme, u64)> =
        all_schemes().into_iter().map(|s| (s, 1 + rng.below(499_999))).collect();
    for _ in 0..10 {
        cases.push((pick_scheme(&mut rng), 1 + rng.below(499_999)));
    }
    for (case, (scheme, size)) in cases.into_iter().enumerate() {
        let spec = TopoSpec::SingleSwitch {
            hosts: 4,
            link: LinkParams::uniform(Rate::gbps(10), us(3)),
        };
        let mut h = SchemeBuilder::new(scheme).topology(spec).build_checked();
        let hosts = h.hosts().to_vec();
        h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size, start: 0 }]);
        assert!(h.run(ms(2000)), "case {case}: {} did not finish", scheme.name());
        let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
        // Causality: no flow beats its store-and-forward lower bound.
        assert!(
            fct + us(1) >= h.ideal_fct(size),
            "case {case} {}: fct {} < ideal {} (size {size})",
            scheme.name(),
            fct,
            h.ideal_fct(size)
        );
        h.topo.net.tracer().assert_flows_complete(h.metrics());
    }
}
