//! Strict-priority queue bank (commodity switches expose 8 levels).
//!
//! Used by Homa (unscheduled packets in high priorities, scheduled below),
//! by the §5.5 "priority queueing" alternative to Aeolus (unscheduled in the
//! lowest priority), and — with `selective_threshold` — by Homa+Aeolus where
//! per-port RED/ECN drops unscheduled arrivals once the *port* occupancy
//! exceeds the threshold, regardless of which priority queue they target.

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, PoolHandle, QueueDisc};
use crate::pool::{PacketPool, PacketRef};
use crate::units::Time;

/// A bank of strict-priority FIFOs sharing one per-port byte budget.
pub struct PriorityBank {
    queues: Vec<ByteFifo>,
    /// Per-port buffer cap across all priority levels.
    cap_bytes: u64,
    /// Aeolus per-port selective dropping: droppable (Non-ECT) arrivals are
    /// discarded once total port occupancy reaches this threshold.
    selective_threshold: Option<u64>,
    /// Optional switch-wide shared buffer pool (Table 5 experiment).
    pool: Option<PoolHandle>,
    bytes: u64,
}

impl PriorityBank {
    /// A bank with `levels` strict priorities (0 served first) and a shared
    /// per-port cap of `cap_bytes`.
    pub fn new(levels: usize, cap_bytes: u64) -> PriorityBank {
        assert!((1..=64).contains(&levels), "unreasonable priority level count");
        PriorityBank {
            queues: (0..levels).map(|_| ByteFifo::new()).collect(),
            cap_bytes,
            selective_threshold: None,
            pool: None,
            bytes: 0,
        }
    }

    /// Enable Aeolus selective dropping at port scope.
    pub fn with_selective_threshold(mut self, threshold: u64) -> PriorityBank {
        self.selective_threshold = Some(threshold);
        self
    }

    /// Attach a switch-wide shared buffer pool.
    pub fn with_pool(mut self, pool: PoolHandle) -> PriorityBank {
        self.pool = Some(pool);
        self
    }

    /// Number of priority levels.
    pub fn levels(&self) -> usize {
        self.queues.len()
    }

    /// Bytes queued at one priority level (for tests / tracing).
    pub fn bytes_at(&self, level: usize) -> u64 {
        self.queues[level].bytes()
    }
}

impl QueueDisc for PriorityBank {
    fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, _now: Time) -> EnqueueOutcome {
        let p = pool.get(pkt);
        let sz = p.size;
        let droppable = p.droppable();
        let level = (p.priority as usize).min(self.queues.len() - 1);
        if let Some(k) = self.selective_threshold {
            if self.bytes >= k && droppable {
                return EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, pkt };
            }
        }
        if self.bytes + sz as u64 > self.cap_bytes {
            return EnqueueOutcome::Dropped { reason: DropReason::BufferFull, pkt };
        }
        if let Some(shared) = &self.pool {
            if !shared.borrow_mut().try_alloc(sz as u64) {
                return EnqueueOutcome::Dropped { reason: DropReason::SharedBufferFull, pkt };
            }
        }
        self.bytes += sz as u64;
        self.queues[level].push(pkt, sz);
        EnqueueOutcome::Queued
    }

    fn poll(&mut self, _pool: &mut PacketPool, _now: Time) -> Poll {
        for q in self.queues.iter_mut() {
            if let Some((pkt, sz)) = q.pop() {
                let sz = sz as u64;
                self.bytes -= sz;
                if let Some(shared) = &self.pool {
                    shared.borrow_mut().free(sz);
                }
                return Poll::Ready(pkt);
            }
        }
        Poll::Empty
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }

    fn pkts(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn bands(&self, out: &mut Vec<(&'static str, u64)>) {
        // Commodity switches expose 8 levels; deeper banks aggregate the
        // tail under the last name rather than invent dynamic labels.
        const NAMES: [&str; 8] = ["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"];
        for (level, q) in self.queues.iter().enumerate() {
            let name = NAMES[level.min(NAMES.len() - 1)];
            if level < NAMES.len() {
                out.push((name, q.bytes()));
            } else if let Some(last) = out.last_mut() {
                last.1 += q.bytes();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::data_pkt;
    use super::super::SharedPool;
    use super::*;
    use crate::packet::TrafficClass;

    fn pkt_at(pool: &mut PacketPool, prio: u8, seq: u64) -> PacketRef {
        let mut p = data_pkt(TrafficClass::Scheduled, seq);
        p.priority = prio;
        pool.insert(p)
    }

    #[test]
    fn strict_priority_order() {
        let mut pool = PacketPool::new();
        let mut q = PriorityBank::new(8, 1 << 20);
        let a = pkt_at(&mut pool, 5, 50);
        q.enqueue(a, &mut pool, 0);
        let b = pkt_at(&mut pool, 0, 0);
        q.enqueue(b, &mut pool, 0);
        let c = pkt_at(&mut pool, 3, 30);
        q.enqueue(c, &mut pool, 0);
        let d = pkt_at(&mut pool, 0, 1);
        q.enqueue(d, &mut pool, 0);
        let mut order = Vec::new();
        while let Poll::Ready(p) = q.poll(&mut pool, 0) {
            order.push(pool.get(p).seq);
        }
        assert_eq!(order, vec![0, 1, 30, 50]);
    }

    #[test]
    fn port_cap_shared_across_levels() {
        let mut pool = PacketPool::new();
        let mut q = PriorityBank::new(8, 3000);
        let a = pkt_at(&mut pool, 7, 0);
        assert!(matches!(q.enqueue(a, &mut pool, 0), EnqueueOutcome::Queued));
        let b = pkt_at(&mut pool, 6, 1);
        assert!(matches!(q.enqueue(b, &mut pool, 0), EnqueueOutcome::Queued));
        // A *high* priority arrival is still tail-dropped when the port
        // buffer is full of low-priority bytes — the §5.5 failure mode.
        let c = pkt_at(&mut pool, 0, 2);
        match q.enqueue(c, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::BufferFull, .. } => {}
            other => panic!("expected drop, got {other:?}"),
        }
    }

    #[test]
    fn selective_threshold_applies_across_the_whole_port() {
        let mut pool = PacketPool::new();
        let mut q = PriorityBank::new(8, 1 << 20).with_selective_threshold(3000);
        let unsched = |pool: &mut PacketPool, seq| {
            let mut p = data_pkt(TrafficClass::Unscheduled, seq);
            p.priority = 7;
            pool.insert(p)
        };
        let a = unsched(&mut pool, 0);
        assert!(matches!(q.enqueue(a, &mut pool, 0), EnqueueOutcome::Queued));
        let b = pkt_at(&mut pool, 2, 1);
        assert!(matches!(q.enqueue(b, &mut pool, 0), EnqueueOutcome::Queued));
        // Port occupancy is now 3000 B: droppable arrivals go, even to an
        // empty priority level...
        let c = unsched(&mut pool, 2);
        match q.enqueue(c, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. } => {}
            other => panic!("expected selective drop, got {other:?}"),
        }
        // ...while scheduled packets are still accepted.
        let d = pkt_at(&mut pool, 1, 3);
        assert!(matches!(q.enqueue(d, &mut pool, 0), EnqueueOutcome::Queued));
    }

    #[test]
    fn out_of_range_priority_clamps_to_lowest() {
        let mut pool = PacketPool::new();
        let mut q = PriorityBank::new(2, 1 << 20);
        let r = pkt_at(&mut pool, 9, 42);
        q.enqueue(r, &mut pool, 0);
        assert_eq!(q.bytes_at(1), 1500);
    }

    #[test]
    fn shared_pool_integrates() {
        let mut pool = PacketPool::new();
        let shared = SharedPool::new(1500);
        let mut a = PriorityBank::new(2, 1 << 20).with_pool(shared.clone());
        let mut b = PriorityBank::new(2, 1 << 20).with_pool(shared.clone());
        let r0 = pkt_at(&mut pool, 0, 0);
        assert!(matches!(a.enqueue(r0, &mut pool, 0), EnqueueOutcome::Queued));
        let r1 = pkt_at(&mut pool, 0, 1);
        match b.enqueue(r1, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::SharedBufferFull, .. } => {}
            other => panic!("expected pool drop, got {other:?}"),
        }
        assert!(matches!(a.poll(&mut pool, 0), Poll::Ready(_)));
        assert_eq!(shared.borrow().used(), 0);
    }

    #[test]
    fn byte_and_packet_counters_consistent() {
        let mut pool = PacketPool::new();
        let mut q = PriorityBank::new(8, 1 << 20);
        for i in 0..5 {
            let r = pkt_at(&mut pool, (i % 3) as u8, i);
            q.enqueue(r, &mut pool, 0);
        }
        assert_eq!(q.pkts(), 5);
        assert_eq!(q.bytes(), 5 * 1500);
        while let Poll::Ready(_) = q.poll(&mut pool, 0) {}
        assert_eq!(q.pkts(), 0);
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn conforms_to_oracle_ledger_under_seeded_churn() {
        for seed in 0..8 {
            crate::queues::testutil::oracle_audit(
                || Box::new(PriorityBank::new(8, 12_000).with_selective_threshold(4_000)),
                seed,
                600,
            );
        }
    }
}
