//! A set of disjoint byte ranges.
//!
//! Receivers use this to track which bytes of a message have arrived (and so
//! which arriving bytes are new vs. duplicates), and senders use it to track
//! acknowledged data. Ranges are half-open `[start, end)`.

use std::collections::BTreeMap;

/// Set of disjoint, coalesced half-open byte ranges.
#[derive(Debug, Clone, Default)]
pub struct RangeSet {
    // start -> end, ranges disjoint and non-adjacent.
    ranges: BTreeMap<u64, u64>,
    total: u64,
}

impl RangeSet {
    /// An empty set.
    pub fn new() -> RangeSet {
        RangeSet::default()
    }

    /// Insert `[start, end)`, returning the number of bytes newly covered
    /// (0 when the range was already fully present — i.e. a duplicate).
    ///
    /// The common cases — duplicate data and in-order extension of an
    /// existing range — never touch the allocator: the predecessor's end is
    /// updated in place and successors are only removed (not re-inserted).
    pub fn insert(&mut self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let mut new_start = start;
        let mut new_end = end;
        let mut absorbed: u64 = 0;
        // The only range that can begin before `start` and still overlap or
        // touch `[start, end)` is the predecessor; merge into it in place.
        let mut in_place = false;
        if let Some((&s, &e)) = self.ranges.range(..=start).next_back() {
            if e >= start {
                if e >= end {
                    return 0; // duplicate: already fully covered
                }
                new_start = s;
                new_end = new_end.max(e);
                absorbed += e - s;
                in_place = true;
            }
        }
        // Absorb every following range that overlaps or is adjacent. They
        // all start strictly after `new_start` (else the predecessor lookup
        // would have found them).
        while let Some((&s, &e)) = self.ranges.range((new_start + 1)..).next() {
            if s > new_end {
                break;
            }
            absorbed += e - s;
            new_end = new_end.max(e);
            self.ranges.remove(&s);
        }
        if in_place {
            *self.ranges.get_mut(&new_start).expect("predecessor present") = new_end;
        } else {
            self.ranges.insert(new_start, new_end);
        }
        let added = (new_end - new_start) - absorbed;
        self.total += added;
        added
    }

    /// Whether `[start, end)` is fully covered.
    pub fn contains(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        match self.ranges.range(..=start).next_back() {
            Some((_, &e)) => e >= end,
            None => false,
        }
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.total
    }

    /// Gaps (missing sub-ranges) within `[0, upto)`, in order.
    pub fn gaps(&self, upto: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for (&s, &e) in &self.ranges {
            if s >= upto {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(upto)));
            }
            cursor = cursor.max(e);
        }
        if cursor < upto {
            out.push((cursor, upto));
        }
        out
    }

    /// Number of covered bytes within `[start, end)`.
    pub fn covered_in(&self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let mut total = 0;
        if let Some((_, &e)) = self.ranges.range(..=start).next_back() {
            if e > start {
                total += e.min(end) - start;
            }
        }
        for (&s, &e) in self.ranges.range((start + 1)..end) {
            total += e.min(end) - s;
        }
        total
    }

    /// First uncovered sub-range within `[start, end)`, if any.
    pub fn first_uncovered_in(&self, start: u64, end: u64) -> Option<(u64, u64)> {
        if start >= end {
            return None;
        }
        let mut cursor = start;
        // The covering range that begins at or before `start` may extend past it.
        if let Some((_, &e)) = self.ranges.range(..=start).next_back() {
            if e > cursor {
                cursor = e;
            }
        }
        if cursor >= end {
            return None;
        }
        match self.ranges.range(cursor..end).next() {
            Some((&s, _)) if s > cursor => Some((cursor, s.min(end))),
            Some((&s, &e)) => {
                debug_assert_eq!(s, cursor);
                let _ = e;
                // Shouldn't happen (coalesced ranges would have covered
                // cursor), but recurse defensively.
                self.first_uncovered_in(e, end)
            }
            None => Some((cursor, end)),
        }
    }

    /// Length of the prefix `[0, n)` fully covered (the cumulative ACK point).
    pub fn contiguous_prefix(&self) -> u64 {
        match self.ranges.get(&0) {
            Some(&e) => e,
            None => 0,
        }
    }

    /// Remove `[start, end)`, returning the number of bytes actually
    /// uncovered (0 when nothing in the range was present). The inverse of
    /// [`RangeSet::insert`]: senders use it to retire acknowledged data that
    /// later proves stale (e.g. a receiver resetting its reassembly state).
    pub fn remove(&mut self, start: u64, end: u64) -> u64 {
        if start >= end {
            return 0;
        }
        let mut removed: u64 = 0;
        // The predecessor may straddle `start`: split it, keeping the left
        // part and re-inserting any right remainder past `end`.
        if let Some((&s, &e)) = self.ranges.range(..=start).next_back() {
            if e > start {
                removed += e.min(end) - start;
                if s == start {
                    self.ranges.remove(&s);
                } else {
                    *self.ranges.get_mut(&s).expect("predecessor present") = start;
                }
                if e > end {
                    self.ranges.insert(end, e);
                }
            }
        }
        // Every later range starting inside `[start, end)` is clipped or
        // deleted outright.
        while let Some((&s, &e)) = self.ranges.range((start + 1)..end).next() {
            self.ranges.remove(&s);
            removed += e.min(end) - s;
            if e > end {
                self.ranges.insert(end, e);
                break;
            }
        }
        self.total -= removed;
        removed
    }

    /// The stored disjoint, coalesced ranges in ascending order.
    pub fn ranges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().map(|(&s, &e)| (s, e))
    }

    /// Number of stored disjoint ranges (for tests).
    pub fn fragments(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_count_new_bytes_once() {
        let mut rs = RangeSet::new();
        assert_eq!(rs.insert(0, 10), 10);
        assert_eq!(rs.insert(0, 10), 0, "duplicate adds nothing");
        assert_eq!(rs.insert(5, 15), 5, "overlap counts only the new part");
        assert_eq!(rs.covered(), 15);
        assert_eq!(rs.fragments(), 1);
    }

    #[test]
    fn adjacent_ranges_coalesce() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        rs.insert(10, 20);
        assert_eq!(rs.fragments(), 1);
        assert!(rs.contains(0, 20));
    }

    #[test]
    fn disjoint_ranges_and_gaps() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(30, 40);
        assert_eq!(rs.gaps(50), vec![(0, 10), (20, 30), (40, 50)]);
        assert_eq!(rs.contiguous_prefix(), 0);
        rs.insert(0, 10);
        assert_eq!(rs.contiguous_prefix(), 20);
    }

    #[test]
    fn insert_bridging_many_ranges() {
        let mut rs = RangeSet::new();
        rs.insert(0, 5);
        rs.insert(10, 15);
        rs.insert(20, 25);
        // Bridge everything.
        assert_eq!(rs.insert(3, 22), 10);
        assert_eq!(rs.fragments(), 1);
        assert!(rs.contains(0, 25));
        assert_eq!(rs.covered(), 25);
    }

    #[test]
    fn contains_partial_is_false() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        assert!(!rs.contains(5, 15));
        assert!(rs.contains(2, 8));
        assert!(rs.contains(7, 7), "empty range trivially contained");
    }

    #[test]
    fn gaps_clip_to_upto() {
        let mut rs = RangeSet::new();
        rs.insert(5, 100);
        assert_eq!(rs.gaps(10), vec![(0, 5)]);
        assert_eq!(rs.gaps(3), vec![(0, 3)]);
    }

    #[test]
    fn covered_in_counts_partial_overlaps() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(30, 40);
        assert_eq!(rs.covered_in(0, 50), 20);
        assert_eq!(rs.covered_in(15, 35), 10);
        assert_eq!(rs.covered_in(12, 18), 6);
        assert_eq!(rs.covered_in(20, 30), 0);
        assert_eq!(rs.covered_in(40, 40), 0);
    }

    #[test]
    fn first_uncovered_walks_holes() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        rs.insert(20, 30);
        assert_eq!(rs.first_uncovered_in(0, 40), Some((10, 20)));
        assert_eq!(rs.first_uncovered_in(25, 40), Some((30, 40)));
        assert_eq!(rs.first_uncovered_in(0, 10), None);
        assert_eq!(rs.first_uncovered_in(5, 15), Some((10, 15)));
        assert_eq!(rs.first_uncovered_in(12, 18), Some((12, 18)));
        let empty = RangeSet::new();
        assert_eq!(empty.first_uncovered_in(3, 7), Some((3, 7)));
        assert_eq!(empty.first_uncovered_in(7, 7), None);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut rs = RangeSet::new();
        assert_eq!(rs.insert(5, 5), 0);
        assert_eq!(rs.covered(), 0);
        assert_eq!(rs.fragments(), 0);
    }

    #[test]
    fn remove_splits_straddled_range() {
        let mut rs = RangeSet::new();
        rs.insert(0, 100);
        assert_eq!(rs.remove(40, 60), 20);
        assert_eq!(rs.covered(), 80);
        assert_eq!(rs.ranges().collect::<Vec<_>>(), vec![(0, 40), (60, 100)]);
        assert!(!rs.contains(40, 41));
        assert!(rs.contains(0, 40));
        assert!(rs.contains(60, 100));
    }

    #[test]
    fn remove_spanning_many_ranges() {
        let mut rs = RangeSet::new();
        rs.insert(0, 10);
        rs.insert(20, 30);
        rs.insert(40, 50);
        // Clips the first, swallows the second, clips the third.
        assert_eq!(rs.remove(5, 45), 20);
        assert_eq!(rs.ranges().collect::<Vec<_>>(), vec![(0, 5), (45, 50)]);
        assert_eq!(rs.covered(), 10);
    }

    #[test]
    fn remove_exact_range_and_misses() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        assert_eq!(rs.remove(0, 10), 0, "adjacent-left removes nothing");
        assert_eq!(rs.remove(20, 30), 0, "adjacent-right removes nothing");
        assert_eq!(rs.remove(15, 15), 0, "empty range removes nothing");
        assert_eq!(rs.remove(10, 20), 10, "exact overlap removes all");
        assert_eq!(rs.fragments(), 0);
        assert_eq!(rs.covered(), 0);
    }

    /// Byte-per-byte reference model over a small universe.
    struct Naive {
        v: Vec<bool>,
    }

    impl Naive {
        fn new(n: usize) -> Naive {
            Naive { v: vec![false; n] }
        }
        fn insert(&mut self, s: u64, e: u64) -> u64 {
            let mut added = 0;
            for i in s..e {
                if !self.v[i as usize] {
                    self.v[i as usize] = true;
                    added += 1;
                }
            }
            added
        }
        fn remove(&mut self, s: u64, e: u64) -> u64 {
            let mut removed = 0;
            for i in s..e {
                if self.v[i as usize] {
                    self.v[i as usize] = false;
                    removed += 1;
                }
            }
            removed
        }
        fn ranges(&self) -> Vec<(u64, u64)> {
            let mut out: Vec<(u64, u64)> = Vec::new();
            for (i, &b) in self.v.iter().enumerate() {
                if b {
                    match out.last_mut() {
                        Some(last) if last.1 == i as u64 => last.1 += 1,
                        _ => out.push((i as u64, i as u64 + 1)),
                    }
                }
            }
            out
        }
        fn covered_in(&self, s: u64, e: u64) -> u64 {
            (s..e).filter(|&i| self.v[i as usize]).count() as u64
        }
    }

    /// The coalescing representation invariant: ranges ascend, are disjoint,
    /// non-empty, non-adjacent, and sum to `covered()`.
    fn check_invariants(rs: &RangeSet) {
        let mut prev_end: Option<u64> = None;
        let mut sum = 0;
        for (s, e) in rs.ranges() {
            assert!(s < e, "empty stored range [{s}, {e})");
            if let Some(p) = prev_end {
                assert!(s > p, "ranges out of order or adjacent: prev end {p}, next start {s}");
            }
            sum += e - s;
            prev_end = Some(e);
        }
        assert_eq!(sum, rs.covered(), "covered() disagrees with stored ranges");
    }

    #[test]
    fn random_op_sequences_match_naive_model() {
        const UNIVERSE: u64 = 257;
        for seed in 0..32u64 {
            let mut rng = crate::rng::SimRng::seed_from_u64(0xC0FFEE ^ seed);
            let mut rs = RangeSet::new();
            let mut model = Naive::new(UNIVERSE as usize);
            for _ in 0..400 {
                let a = rng.below(UNIVERSE);
                let b = rng.below(UNIVERSE);
                // Bias toward small, often-adjacent ranges; keep some empty
                // (a == b) and inverted-ish pairs resolved by min/max.
                let (s, e) = (a.min(b), a.max(b).min(a.min(b) + rng.below(24)));
                match rng.below(4) {
                    0 => assert_eq!(rs.remove(s, e), model.remove(s, e), "remove [{s}, {e})"),
                    _ => assert_eq!(rs.insert(s, e), model.insert(s, e), "insert [{s}, {e})"),
                }
                check_invariants(&rs);
            }
            // Full-state agreement, including iteration order.
            assert_eq!(rs.ranges().collect::<Vec<_>>(), model.ranges(), "seed {seed}");
            // Spot-check queries against the model.
            for _ in 0..50 {
                let a = rng.below(UNIVERSE);
                let b = rng.below(UNIVERSE);
                let (s, e) = (a.min(b), a.max(b));
                assert_eq!(rs.covered_in(s, e), model.covered_in(s, e));
                assert_eq!(rs.contains(s, e), model.covered_in(s, e) == e - s);
                if s < e {
                    let gap = rs.first_uncovered_in(s, e);
                    match gap {
                        None => assert_eq!(model.covered_in(s, e), e - s),
                        Some((gs, ge)) => {
                            assert!(gs >= s && ge <= e && gs < ge);
                            assert_eq!(model.covered_in(gs, ge), 0);
                            assert_eq!(model.covered_in(s, gs), gs - s);
                        }
                    }
                }
            }
            let upto = rng.range_u64(1, UNIVERSE);
            let gaps = rs.gaps(upto);
            let mut uncovered = 0;
            for &(s, e) in &gaps {
                assert!(s < e && e <= upto);
                assert_eq!(model.covered_in(s, e), 0, "gap [{s}, {e}) not empty in model");
                uncovered += e - s;
            }
            assert_eq!(uncovered, upto - model.covered_in(0, upto));
        }
    }
}
