//! Figure 11 — testbed 7-to-1 incast MCT, Homa vs Homa+Aeolus: Aeolus cuts
//! the tail from hundreds of ms (RTO-bound) to a few ms.

use aeolus_sim::units::ms;
use aeolus_transport::Scheme;

use crate::fig08::mct_tables;
use crate::report::Report;
use crate::scale::Scale;

/// Run Figure 11.
pub fn run(scale: Scale) -> Report {
    let rounds = scale.count(3, 30, 100);
    let (dist, means) = mct_tables([Scheme::Homa { rto: ms(10) }, Scheme::HomaAeolus], rounds);

    let mut r = Report::new();
    r.section("Figure 11(a): 7-to-1 incast MCT distribution @30KB (us)", dist);
    r.section("Figure 11(b): mean MCT vs message size (us)", means);
    r.note("paper: tail MCT cut from 141ms to 18ms; average from 100s of ms to a few ms");
    r
}
