//! pHost (CoNEXT'15) — receiver-driven, token-based transport — with
//! pluggable first-RTT handling. The Aeolus paper groups pHost with Homa as
//! a "blind burst, prioritize unscheduled" design (§2.4); it is included
//! here as an extension beyond the paper's three evaluated baselines.
//!
//! Protocol model:
//!
//! * A new sender transmits an RTS plus one RTT-worth of *free-token*
//!   (unscheduled) packets at line rate.
//! * The receiver paces tokens (one per MTU serialization time) to its
//!   active flows in SRPT order; each token authorizes one data packet.
//! * Loss recovery is timeout-based: the receiver re-issues tokens for
//!   missing bytes when a flow stalls (original pHost), or — with Aeolus —
//!   the probe/per-packet-ACK machinery detects first-RTT losses exactly
//!   and retransmissions ride guaranteed token-induced packets.
//!
//! In [`FirstRttMode::Blind`] form, unscheduled packets ride a *higher*
//! priority than scheduled ones (pHost's choice, the §2.4 critique target);
//! with Aeolus they are droppable at the selective threshold instead.
//!
//! [`FirstRttMode::Blind`]: crate::common::FirstRttMode::Blind

use aeolus_core::PreCreditSender;
use aeolus_sim::units::Time;
use aeolus_sim::{
    Ctx, Endpoint, FlowDesc, FlowId, FlowMap, LossCause, NodeId, Packet, PacketKind, TimerTable,
    TrafficClass, TransportEvent,
};

use crate::common::{
    abort_peer_silent, ack_packet, data_packet, probe_ack_packet, probe_packet, BaseConfig,
    FirstRttMode, Tombstones,
};
use crate::receiver_table::RecvBook;

/// pHost tunables.
#[derive(Debug, Clone, Copy)]
pub struct PHostConfig {
    /// Shared transport parameters.
    pub base: BaseConfig,
    /// Receiver-side retransmission timeout (token re-issue) for Blind mode.
    pub rto: Time,
}

impl PHostConfig {
    /// Defaults for the given base configuration.
    pub fn new(base: BaseConfig, rto: Time) -> PHostConfig {
        PHostConfig { base, rto }
    }
}

/// A batch of missing ranges to re-request from one sender.
type ResendBatch = (FlowId, NodeId, Vec<(u64, u64)>);

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    /// The receiver's token pacer tick.
    TokenTick,
    /// Stalled-flow scan (token re-issue / missing-range recovery).
    StallScan,
    /// §6-style initial-contact retry: if the RTS, the whole burst *and* the
    /// probe died on the way, the receiver never learns the flow exists —
    /// re-send the RTS (and probe) until something comes back.
    RtsRetry(FlowId),
}

struct SendFlow {
    desc: FlowDesc,
    core: PreCreditSender,
    completed: bool,
    /// Most recent loss signal, for retransmission attribution.
    last_loss: Option<LossCause>,
    /// Set once anything came back (token, ACK, probe ACK, resend).
    heard_back: bool,
    /// Last time the receiver showed signs of life (peer-death watchdog).
    last_heard: Time,
    /// Probe sequence, kept for retries.
    probe_seq: Option<u64>,
    /// Consecutive fruitless retries, capped — each doubles the interval.
    retry_fires: u32,
}

struct RecvFlow {
    sender: NodeId,
    book: RecvBook,
    /// Tokens issued to this flow so far (each authorizes one packet).
    tokens_sent: u64,
    /// Scheduled (token-induced) data packets received back.
    sched_pkts_received: u64,
    /// Tokens written off by the stall scan (their packets are presumed
    /// lost, so they no longer count as outstanding).
    tokens_forgiven: u64,
    last_arrival: Time,
    /// Last *real* arrival — never rewound by the stall scan's back-off, so
    /// it measures true peer silence for the death watchdog.
    last_progress: Time,
}

/// The per-host pHost endpoint.
pub struct PHostEndpoint {
    cfg: PHostConfig,
    send_flows: FlowMap<FlowId, SendFlow>,
    recv_flows: FlowMap<FlowId, RecvFlow>,
    timers: TimerTable<TimerKind>,
    pacer_armed: bool,
    next_token_at: Time,
    scan_armed: bool,
    dead: Tombstones,
}

impl PHostEndpoint {
    /// A fresh endpoint.
    pub fn new(cfg: PHostConfig) -> PHostEndpoint {
        PHostEndpoint {
            cfg,
            send_flows: FlowMap::new(),
            recv_flows: FlowMap::new(),
            timers: TimerTable::new(),
            pacer_armed: false,
            next_token_at: 0,
            scan_armed: false,
            dead: Tombstones::new(),
        }
    }

    /// Peer-silence abort (either role): drop local state, bury the id and
    /// record the abort.
    fn give_up_on(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow);
        self.recv_flows.remove(flow);
        self.dead.bury(flow);
        abort_peer_silent(flow, ctx);
    }

    fn rtt_bytes(&self, ctx: &Ctx<'_>) -> u64 {
        self.cfg.base.aeolus.burst_budget(ctx.line_rate, self.cfg.base.base_rtt)
    }

    fn token_spacing(&self, ctx: &Ctx<'_>) -> Time {
        ctx.line_rate.serialize(self.cfg.base.mtu_wire() as u64)
    }

    /// Tokens a flow still deserves: enough outstanding tokens to cover its
    /// remaining bytes, one packet per token. Counting *packets* (not bytes)
    /// keeps the accounting exact when retransmitted chunks are fragmented.
    fn token_deficit(rf: &RecvFlow, rtt_bytes: u64, mtu: u64) -> u64 {
        if rf.book.core.size().is_none() || rf.book.is_complete() {
            return 0;
        }
        let remaining = rf.book.remaining().unwrap_or(0);
        // Window-bound the outstanding tokens at one BDP: an unbounded
        // window lets a backlogged sender overload the downlink later.
        let window = rtt_bytes.div_ceil(mtu).max(1);
        let needed = remaining.div_ceil(mtu).min(window);
        let outstanding = rf
            .tokens_sent
            .saturating_sub(rf.sched_pkts_received + rf.tokens_forgiven);
        needed.saturating_sub(outstanding)
    }

    fn arm_pacer(&mut self, ctx: &mut Ctx<'_>) {
        if self.pacer_armed {
            return;
        }
        self.pacer_armed = true;
        let delay = self.next_token_at.saturating_sub(ctx.now);
        ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::TokenTick));
    }

    /// One pacer tick: give a token to the SRPT-best flow with a deficit.
    fn on_token_tick(&mut self, ctx: &mut Ctx<'_>) {
        self.pacer_armed = false;
        let rtt_bytes = self.rtt_bytes(ctx);
        let mtu = self.cfg.base.mtu_payload as u64;
        // SRPT: smallest remaining first. The seed's BTreeMap scan broke
        // remaining-bytes ties by smallest flow id implicitly (min_by_key
        // keeps the first minimum in key order); slot order is different,
        // so the id is now an explicit tie-break key.
        let best = self
            .recv_flows
            .iter()
            .filter(|(_, rf)| Self::token_deficit(rf, rtt_bytes, mtu) > 0)
            .min_by_key(|(id, rf)| (rf.book.remaining().unwrap_or(u64::MAX), *id))
            .map(|(id, rf)| (id, rf.sender));
        if let Some((id, sender)) = best {
            let rf = self.recv_flows.get_mut(id).expect("chosen flow");
            rf.tokens_sent += 1;
            let mut tok = Packet::control(id, ctx.host, sender, rf.tokens_sent, PacketKind::Pull);
            tok.priority = 0;
            // Each token authorizes one MTU of transmission: pHost's credit.
            ctx.emit(TransportEvent::CreditIssue { flow: id, bytes: mtu });
            ctx.send(tok);
            let spacing = self.token_spacing(ctx);
            self.next_token_at = ctx.now + spacing;
            // More work pending? Keep ticking.
            let more = self
                .recv_flows
                .values()
                .any(|rf| Self::token_deficit(rf, rtt_bytes, mtu) > 0);
            if more {
                self.pacer_armed = true;
                ctx.set_timer_in_with(spacing, self.timers.arm(TimerKind::TokenTick));
            }
        }
    }

    fn arm_scan(&mut self, ctx: &mut Ctx<'_>) {
        if self.scan_armed {
            return;
        }
        self.scan_armed = true;
        let delay = self.stale_after() / 2;
        ctx.set_timer_in_with(delay, self.timers.arm(TimerKind::StallScan));
    }

    fn stale_after(&self) -> Time {
        match self.cfg.base.mode {
            FirstRttMode::Blind => self.cfg.rto,
            _ => (20 * self.cfg.base.base_rtt).max(aeolus_sim::units::ms(1)),
        }
    }

    /// Receiver-side recovery: for stalled incomplete flows, budget extra
    /// tokens covering the missing bytes (and, in Blind mode, tell the
    /// sender which ranges to retransmit).
    fn on_stall_scan(&mut self, ctx: &mut Ctx<'_>) {
        self.scan_armed = false;
        let stale = self.stale_after();
        let mut any_incomplete = false;
        let mut resends: Vec<ResendBatch> = Vec::new();
        let mut give_ups: Vec<FlowId> = Vec::new();
        for (id, rf) in self.recv_flows.iter_mut() {
            if rf.book.is_complete() {
                continue;
            }
            if self.cfg.base.peer_silent(rf.last_progress, ctx.now) {
                // The sender has been dead past the death threshold despite
                // backed-off token re-issues: abort instead of retrying
                // forever.
                give_ups.push(id);
                continue;
            }
            any_incomplete = true;
            let size = match rf.book.core.size() {
                Some(s) => s,
                None => continue,
            };
            // Loss-stall requires outstanding tokens whose packets never
            // returned; zero outstanding = waiting on the SRPT pacer.
            if self.cfg.base.mode.probe_recovery() {
                let outstanding = rf
                    .tokens_sent
                    .saturating_sub(rf.sched_pkts_received + rf.tokens_forgiven);
                if outstanding == 0 {
                    continue;
                }
            }
            if ctx.now.saturating_sub(rf.last_arrival) < stale {
                continue;
            }
            let missing: Vec<(u64, u64)> =
                rf.book.core.missing_below(size).into_iter().take(8).collect();
            if !missing.is_empty() {
                ctx.metrics.note_timeout(id);
                rf.last_arrival = ctx.now;
                // Token re-issue (the pHost recovery): write the stalled
                // tokens off so fresh ones flow for the retransmissions.
                let outstanding = rf
                    .tokens_sent
                    .saturating_sub(rf.sched_pkts_received + rf.tokens_forgiven);
                rf.tokens_forgiven += outstanding;
                resends.push((id, rf.sender, missing));
            }
        }
        give_ups.sort_unstable();
        for id in give_ups {
            self.give_up_on(id, ctx);
        }
        // Slot order is not key order: sort so resend emission matches the
        // seed's BTreeMap scan order exactly.
        resends.sort_unstable_by_key(|&(id, _, _)| id);
        for (id, sender, missing) in resends {
            for (s, e) in missing {
                let r = Packet::control(id, ctx.host, sender, s, PacketKind::Resend { end: e });
                ctx.send(r);
            }
        }
        self.arm_pacer(ctx);
        if any_incomplete {
            self.scan_armed = true;
            ctx.set_timer_in_with(stale / 2, self.timers.arm(TimerKind::StallScan));
        }
    }

    /// Send one token-induced packet.
    fn pump_one(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        let mtu = self.cfg.base.mtu_payload;
        if let Some(sf) = self.send_flows.get_mut(flow) {
            sf.core.end_burst();
            if let Some(chunk) = sf.core.next_scheduled_chunk(mtu) {
                let mut pkt = data_packet(
                    &sf.desc,
                    chunk.seq,
                    chunk.len,
                    TrafficClass::Scheduled,
                    chunk.retransmit,
                );
                // pHost puts scheduled below unscheduled: priority 1 of 2.
                pkt.priority = 1;
                if chunk.retransmit {
                    let cause = if chunk.last_resort {
                        LossCause::LastResort
                    } else {
                        sf.last_loss.unwrap_or(LossCause::Stall)
                    };
                    ctx.emit(TransportEvent::Retransmit {
                        flow,
                        bytes: chunk.len as u64,
                        cause,
                    });
                }
                ctx.send(pkt);
            }
        }
    }

    /// Base initial-contact retry interval (capped exponential backoff on
    /// top, like the other schemes' §6 probe retries).
    fn retry_base(&self) -> Time {
        let retry_rtts = self.cfg.base.aeolus.probe_retry_rtts;
        (retry_rtts as Time * self.cfg.base.base_rtt.max(1)).max(aeolus_sim::units::ms(2))
    }

    fn on_rts_retry(&mut self, flow: FlowId, ctx: &mut Ctx<'_>) {
        if self.cfg.base.aeolus.probe_retry_rtts == 0 {
            return;
        }
        let base = self.retry_base();
        let probe_recovery = self.cfg.base.mode.probe_recovery();
        let pcfg = self.cfg.base;
        let mut give_up = false;
        let fires = {
            let sf = match self.send_flows.get_mut(flow) {
                Some(sf) => sf,
                None => return,
            };
            if sf.heard_back || sf.completed {
                None
            } else if pcfg.peer_silent(sf.last_heard, ctx.now) {
                give_up = true;
                None
            } else {
                // Total silence: re-introduce the flow to the receiver.
                ctx.metrics.note_timeout(flow);
                let mut rts = Packet::control(flow, ctx.host, sf.desc.dst, 0, PacketKind::Request);
                rts.flow_size = sf.desc.size;
                ctx.send(rts);
                if probe_recovery {
                    if let Some(ps) = sf.probe_seq {
                        ctx.send(probe_packet(&sf.desc, ps));
                    }
                }
                sf.retry_fires = (sf.retry_fires + 1).min(6);
                Some(sf.retry_fires)
            }
        };
        if give_up {
            self.give_up_on(flow, ctx);
            return;
        }
        if let Some(fires) = fires {
            let token = self.timers.arm(TimerKind::RtsRetry(flow));
            ctx.set_timer_in_with(base << fires.min(6), token);
        }
    }

    fn ensure_recv_flow(&mut self, pkt: &Packet, now: Time) {
        let rf = self.recv_flows.get_or_insert_with(pkt.flow, || RecvFlow {
            sender: pkt.src,
            book: RecvBook::new(),
            tokens_sent: 0,
            sched_pkts_received: 0,
            tokens_forgiven: 0,
            last_arrival: now,
            last_progress: now,
        });
        rf.book.learn_size(pkt.flow_size);
        rf.last_arrival = now;
        rf.last_progress = now;
    }
}

impl Endpoint for PHostEndpoint {
    fn on_flow_arrival(&mut self, flow: FlowDesc, ctx: &mut Ctx<'_>) {
        let mode = self.cfg.base.mode;
        let budget = if mode.bursts() { self.rtt_bytes(ctx).min(flow.size) } else { 0 };
        let mut core = PreCreditSender::new(flow.size, budget);
        // Recovery is token re-issue (scan- or probe-driven); last-resort
        // duplication would only waste tokens.
        core.disable_last_resort();
        // RTS first (carries the size), then the free-token burst.
        let mut rts = Packet::control(flow.id, flow.src, flow.dst, 0, PacketKind::Request);
        rts.flow_size = flow.size;
        ctx.send(rts);
        let native_prio = 0; // pHost: unscheduled at top priority
        let mtu = self.cfg.base.mtu_payload;
        let mut burst_sent = 0u64;
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStart { flow: flow.id, bytes: budget });
        }
        while let Some(chunk) = core.next_burst_chunk(mtu) {
            let mut pkt = data_packet(&flow, chunk.seq, chunk.len, TrafficClass::Unscheduled, false);
            mode.stamp_unscheduled(&mut pkt, native_prio, 1);
            burst_sent += chunk.len as u64;
            ctx.send(pkt);
        }
        if budget > 0 {
            ctx.emit(TransportEvent::BurstStop { flow: flow.id, sent: burst_sent });
        }
        let mut probe_seq = None;
        if let Some(ps) = core.end_burst() {
            if mode.probe_recovery() {
                let mut probe = probe_packet(&flow, ps);
                probe.priority = native_prio;
                ctx.send(probe);
                probe_seq = Some(ps);
            }
        }
        if self.cfg.base.aeolus.probe_retry_rtts > 0 {
            let token = self.timers.arm(TimerKind::RtsRetry(flow.id));
            ctx.set_timer_in_with(self.retry_base(), token);
        }
        self.send_flows.insert(
            flow.id,
            SendFlow {
                desc: flow,
                core,
                completed: false,
                last_loss: None,
                heard_back: false,
                last_heard: ctx.now,
                probe_seq,
                retry_fires: 0,
            },
        );
    }

    fn on_packet(&mut self, pkt: Packet, ctx: &mut Ctx<'_>) {
        if self.dead.holds(pkt.flow) {
            // Stale wire traffic for an aborted flow must not resurrect it.
            return;
        }
        match pkt.kind {
            PacketKind::Request => {
                self.ensure_recv_flow(&pkt, ctx.now);
                self.arm_pacer(ctx);
                self.arm_scan(ctx);
            }
            PacketKind::Data => {
                self.ensure_recv_flow(&pkt, ctx.now);
                let mode = self.cfg.base.mode;
                let rf = self.recv_flows.get_mut(pkt.flow).expect("just ensured");
                let unscheduled = pkt.class == TrafficClass::Unscheduled;
                if !unscheduled {
                    rf.sched_pkts_received += 1;
                }
                let v = rf.book.on_data(&pkt, ctx);
                let sender = rf.sender;
                if mode.probe_recovery() && unscheduled {
                    if let Some((s, e)) = v.acked_range {
                        let mut a = ack_packet(pkt.flow, ctx.host, sender, s, e);
                        a.priority = 0;
                        ctx.send(a);
                    }
                }
                if v.completed {
                    let mut done = ack_packet(pkt.flow, ctx.host, sender, 0, pkt.flow_size);
                    done.priority = 0;
                    ctx.send(done);
                }
                self.arm_pacer(ctx);
                self.arm_scan(ctx);
            }
            PacketKind::Probe => {
                self.ensure_recv_flow(&pkt, ctx.now);
                let rf = self.recv_flows.get_mut(pkt.flow).expect("just ensured");
                rf.book.core.on_probe(pkt.seq, pkt.flow_size);
                let sender = rf.sender;
                let mut pa = probe_ack_packet(pkt.flow, ctx.host, sender, pkt.seq);
                pa.priority = 0;
                ctx.send(pa);
                self.arm_pacer(ctx);
                self.arm_scan(ctx);
            }
            PacketKind::Pull => {
                // A token.
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    ctx.emit(TransportEvent::CreditReceipt {
                        flow: pkt.flow,
                        bytes: self.cfg.base.mtu_payload as u64,
                    });
                }
                self.pump_one(pkt.flow, ctx);
            }
            PacketKind::Resend { end } => {
                // pHost recovery is token re-issue in every mode: requeue
                // the range; the extended token budget clocks it out.
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    let lost = sf.core.requeue_lost(pkt.seq, end.min(sf.desc.size));
                    if lost > 0 {
                        sf.last_loss = Some(LossCause::Stall);
                        ctx.emit(TransportEvent::LossDetected {
                            flow: pkt.flow,
                            bytes: lost,
                            cause: LossCause::Stall,
                        });
                    }
                }
            }
            PacketKind::Ack { of_probe, end } => {
                if let Some(sf) = self.send_flows.get_mut(pkt.flow) {
                    sf.heard_back = true;
                    sf.last_heard = ctx.now;
                    let (lost, cause) = if of_probe {
                        (sf.core.on_probe_ack(), LossCause::Probe)
                    } else if pkt.seq == 0 && end >= sf.desc.size {
                        sf.completed = true;
                        sf.core.on_ack_no_infer(0, end);
                        (0, LossCause::SackGap)
                    } else if self.cfg.base.sack_inference() {
                        (sf.core.on_ack(pkt.seq, end), LossCause::SackGap)
                    } else {
                        sf.core.on_ack_no_infer(pkt.seq, end);
                        (0, LossCause::SackGap)
                    };
                    if lost > 0 {
                        sf.last_loss = Some(cause);
                        ctx.emit(TransportEvent::LossDetected {
                            flow: pkt.flow,
                            bytes: lost,
                            cause,
                        });
                    }
                }
            }
            other => {
                debug_assert!(false, "unexpected packet kind for pHost: {other:?}");
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        match self.timers.fire(token) {
            Some(TimerKind::TokenTick) => self.on_token_tick(ctx),
            Some(TimerKind::StallScan) => self.on_stall_scan(ctx),
            Some(TimerKind::RtsRetry(f)) => self.on_rts_retry(f, ctx),
            None => {}
        }
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_>) {
        // A host crash wipes every byte of transport state; the timer
        // generation bump makes all queued tokens stale.
        self.send_flows.clear();
        self.recv_flows.clear();
        self.timers.clear();
        self.pacer_armed = false;
        self.next_token_at = 0;
        self.scan_armed = false;
        self.dead.clear();
    }

    fn on_flow_abort(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
        self.dead.bury(flow.id);
    }

    fn on_flow_restart(&mut self, flow: FlowDesc, _ctx: &mut Ctx<'_>) {
        self.dead.raise(flow.id);
        self.send_flows.remove(flow.id);
        self.recv_flows.remove(flow.id);
    }
}
