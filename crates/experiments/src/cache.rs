//! Content-addressed experiment cache: skip re-simulating cells whose exact
//! configuration has a stored result.
//!
//! Every [`RunConfig`] that [`crate::run_workload`] executes is condensed
//! into a **cell key**: a hash over the canonical text of everything that
//! determines the run's output — scheme (with its parameters), topology,
//! normalized scheme params (including the per-run fault plan), workload,
//! load (as exact f64 bits), flow count, seed, drain, the session-wide
//! `--faults` default, and a schema version that is bumped whenever the
//! output format or run semantics change. Simulations are single-threaded
//! and deterministic, so equal keys imply bit-identical outputs — which
//! makes the cache sound and the verify mode meaningful.
//!
//! Storage is one text file per cell under the cache directory
//! (`results/cache/<32-hex-key>.run`). Floats are stored as `f64::to_bits`
//! hex so the decode → encode round-trip is bit-exact; any parse failure or
//! schema mismatch is treated as a miss and overwritten.
//!
//! The cache is **off by default** — library callers and the test suite
//! always simulate. The `repro` binary turns it on (`--no-cache` keeps it
//! off, `--cache-verify` additionally re-runs a sample of the hits and
//! asserts the stored bytes match a fresh simulation exactly).
//!
//! Conformance-checked runs (`--check`) bypass the cache entirely: the
//! point of checking is to execute events under the oracle, and a skipped
//! run checks nothing.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use aeolus_stats::{FctAggregator, FctSample};

use crate::runner::{RunConfig, RunOutput};

/// Bump whenever [`RunOutput`]'s contents, the cell-key text, or run
/// semantics change: old entries then miss instead of lying.
const SCHEMA: u32 = 1;

/// Cache directory; `None` disables the cache (the default).
static DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Verify mode: re-run a sample of cache hits and compare bytes.
static VERIFY: AtomicBool = AtomicBool::new(false);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static VERIFIED: AtomicU64 = AtomicU64::new(0);

/// Point the cache at a directory (creating it lazily) or disable it with
/// `None`. The `repro` binary calls this; the library default is disabled.
pub fn set_cache_dir(dir: Option<PathBuf>) {
    *DIR.lock().unwrap() = dir;
}

/// Whether the cache is currently enabled.
pub fn cache_enabled() -> bool {
    DIR.lock().unwrap().is_some()
}

/// Enable verify mode: a sample of hits (the first, then every 16th) is
/// recomputed and byte-compared against the stored entry; a mismatch
/// panics, naming the cell.
pub fn set_cache_verify(on: bool) {
    VERIFY.store(on, Ordering::Relaxed);
}

/// Cumulative cache counters since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells answered from the store.
    pub hits: u64,
    /// Cells that had to simulate.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Hits re-run and byte-verified (verify mode).
    pub verified: u64,
}

/// Read the cumulative counters.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
        verified: VERIFIED.load(Ordering::Relaxed),
    }
}

/// 64-bit FNV-1a with a caller-chosen offset basis (two passes with
/// different bases make the 128-bit cell key).
fn fnv1a64(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical text a cell key hashes. Everything output-determining goes
/// in; cosmetic knobs (jobs, csv dir) stay out.
fn key_text(cfg: &RunConfig) -> String {
    format!(
        "schema={SCHEMA}\nscheme={:?}\nspec={:?}\nparams={:?}\nworkload={:?}\nload={:016x}\n\
         n_flows={}\nseed={}\ndrain={}\nsession_faults={}\n",
        cfg.scheme,
        cfg.spec,
        cfg.params,
        cfg.workload,
        cfg.load.to_bits(),
        cfg.n_flows,
        cfg.seed,
        cfg.drain,
        crate::runner::default_faults(),
    )
}

/// The 32-hex-digit content address of one run configuration.
pub fn cell_key(cfg: &RunConfig) -> String {
    let text = key_text(cfg);
    format!(
        "{:016x}{:016x}",
        fnv1a64(0xcbf2_9ce4_8422_2325, text.as_bytes()),
        fnv1a64(0x6c62_272e_07bb_0142, text.as_bytes())
    )
}

/// Bit-exact text encoding of a [`RunOutput`]. Floats as `to_bits` hex;
/// FCT samples one per line.
pub fn encode(key: &str, out: &RunOutput) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "aeolus-cache v{SCHEMA}");
    let _ = writeln!(s, "key {key}");
    let _ = writeln!(s, "efficiency {:016x}", out.efficiency.to_bits());
    let _ = writeln!(s, "goodput {:016x}", out.goodput.to_bits());
    let _ = writeln!(s, "flows_with_timeouts {}", out.flows_with_timeouts);
    let _ = writeln!(s, "completed {}", out.completed);
    let _ = writeln!(s, "scheduled {}", out.scheduled);
    let _ = writeln!(s, "span {}", out.span);
    let _ = writeln!(s, "events {}", out.events);
    let _ = writeln!(s, "samples {}", out.agg.len());
    for smp in out.agg.samples() {
        let _ = writeln!(s, "s {} {} {}", smp.size, smp.fct_ps, smp.ideal_ps);
    }
    let _ = writeln!(s, "end");
    s
}

/// Decode [`encode`]'s output. `None` on any mismatch — a corrupt or
/// stale-schema entry is a miss, never an error.
pub fn decode(key: &str, text: &str) -> Option<RunOutput> {
    let mut lines = text.lines();
    if lines.next()? != format!("aeolus-cache v{SCHEMA}") {
        return None;
    }
    if lines.next()? != format!("key {key}") {
        return None;
    }
    let mut field = |name: &str| -> Option<String> {
        let line = lines.next()?;
        let rest = line.strip_prefix(name)?.strip_prefix(' ')?;
        Some(rest.to_string())
    };
    let efficiency = f64::from_bits(u64::from_str_radix(&field("efficiency")?, 16).ok()?);
    let goodput = f64::from_bits(u64::from_str_radix(&field("goodput")?, 16).ok()?);
    let flows_with_timeouts = field("flows_with_timeouts")?.parse().ok()?;
    let completed = field("completed")?.parse().ok()?;
    let scheduled = field("scheduled")?.parse().ok()?;
    let span = field("span")?.parse().ok()?;
    let events = field("events")?.parse().ok()?;
    let n: usize = field("samples")?.parse().ok()?;
    let mut agg = FctAggregator::new();
    for _ in 0..n {
        let line = lines.next()?;
        let mut parts = line.strip_prefix("s ")?.split(' ');
        agg.push(FctSample {
            size: parts.next()?.parse().ok()?,
            fct_ps: parts.next()?.parse().ok()?,
            ideal_ps: parts.next()?.parse().ok()?,
        });
        if parts.next().is_some() {
            return None;
        }
    }
    // A terminating marker makes tail truncation detectable: a file cut off
    // mid-write can end in a sample line whose shortened numbers still parse.
    if lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    Some(RunOutput {
        agg,
        efficiency,
        flows_with_timeouts,
        completed,
        scheduled,
        goodput,
        span,
        events,
    })
}

/// Serve `cfg` from the cache, or compute it with `run` and store the
/// result. In verify mode a sample of hits is recomputed and byte-compared;
/// a divergence panics with the cell key (a cache that can silently serve
/// wrong numbers is worse than no cache).
pub fn run_cached(cfg: &RunConfig, run: impl FnOnce(&RunConfig) -> RunOutput) -> RunOutput {
    let Some(dir) = DIR.lock().unwrap().clone() else {
        return run(cfg);
    };
    let key = cell_key(cfg);
    let path = dir.join(format!("{key}.run"));
    if let Ok(text) = fs::read_to_string(&path) {
        if let Some(out) = decode(&key, &text) {
            let hit_no = HITS.fetch_add(1, Ordering::Relaxed);
            if VERIFY.load(Ordering::Relaxed) && hit_no % 16 == 0 {
                let fresh = run(cfg);
                let fresh_text = encode(&key, &fresh);
                assert_eq!(
                    fresh_text, text,
                    "cache verify FAILED for cell {key}: stored entry is not bit-identical \
                     to a fresh run — delete {} and investigate",
                    path.display()
                );
                VERIFIED.fetch_add(1, Ordering::Relaxed);
                return fresh;
            }
            return out;
        }
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let out = run(cfg);
    // Best-effort store: a read-only checkout must not fail the experiment.
    if fs::create_dir_all(&dir).is_ok() && fs::write(&path, encode(&key, &out)).is_ok() {
        STORES.fetch_add(1, Ordering::Relaxed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_workload_uncached as uncached;
    use crate::topos::testbed;
    use aeolus_transport::Scheme;
    use aeolus_workloads::Workload;

    /// The cache directory and counters are process-global; tests that
    /// enable the cache serialize on this lock so they cannot observe each
    /// other's state (other suites never enable the cache).
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("aeolus-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn small_cfg(seed: u64) -> RunConfig {
        let mut cfg = RunConfig::new(Scheme::HomaAeolus, testbed(), Workload::WebServer);
        cfg.n_flows = 20;
        cfg.load = 0.3;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn key_is_deterministic_and_config_sensitive() {
        let a = small_cfg(1);
        assert_eq!(cell_key(&a), cell_key(&a.clone()));
        let mut b = a.clone();
        b.seed = 2;
        assert_ne!(cell_key(&a), cell_key(&b), "seed must key");
        let mut c = a.clone();
        c.load = 0.3 + 1e-12;
        assert_ne!(cell_key(&a), cell_key(&c), "load keys on exact f64 bits");
        let mut d = a.clone();
        d.scheme = Scheme::Homa { rto: aeolus_sim::units::ms(10) };
        assert_ne!(cell_key(&a), cell_key(&d), "scheme (with params) must key");
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let cfg = small_cfg(3);
        let out = uncached(&cfg);
        let key = cell_key(&cfg);
        let text = encode(&key, &out);
        let back = decode(&key, &text).expect("decodes");
        assert_eq!(encode(&key, &back), text, "encode(decode(x)) == x");
        assert_eq!(back.efficiency.to_bits(), out.efficiency.to_bits());
        assert_eq!(back.goodput.to_bits(), out.goodput.to_bits());
        assert_eq!(back.events, out.events);
        assert_eq!(back.agg.len(), out.agg.len());
        // Wrong key, wrong schema and truncation all read as misses.
        assert!(decode("00", &text).is_none());
        assert!(decode(&key, &text.replace("v1", "v999")).is_none());
        let cut = &text[..text.len() - 4];
        assert!(decode(&key, cut).is_none());
    }

    #[test]
    fn hit_returns_the_stored_bytes_and_miss_recomputes() {
        let _g = lock();
        let dir = tmpdir("hitmiss");
        set_cache_dir(Some(dir.clone()));
        let cfg = small_cfg(7);
        let key = cell_key(&cfg);
        let path = dir.join(format!("{key}.run"));
        assert!(!path.exists());
        let cold = run_cached(&cfg, uncached);
        assert!(path.exists(), "a miss stores its result");
        // A hit must not simulate: the compute closure is a landmine.
        let warm = run_cached(&cfg, |_| panic!("a hit must not simulate"));
        assert_eq!(encode(&key, &warm), encode(&key, &cold), "hit is bit-identical");
        // A different seed is a different cell (its landmine must fire...
        // by simulating, i.e. NOT panicking — so run it for real).
        let other = small_cfg(8);
        assert_ne!(cell_key(&other), key);
        run_cached(&other, uncached);
        assert!(dir.join(format!("{}.run", cell_key(&other))).exists());
        // The public entry point serves the same bytes through the cache.
        let via_public = crate::runner::run_workload(&cfg);
        assert_eq!(
            encode(&key, &via_public).lines().nth(2).unwrap(),
            encode(&key, &cold).lines().nth(2).unwrap(),
            "run_workload consults the cache when enabled"
        );
        set_cache_dir(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_mode_recomputes_and_matches() {
        let _g = lock();
        let dir = tmpdir("verify");
        set_cache_dir(Some(dir.clone()));
        let cfg = small_cfg(11);
        run_cached(&cfg, uncached); // cold store
        set_cache_verify(true);
        let v0 = cache_stats().verified;
        // Hit sampling is `hit_no % 16 == 0` on the global counter, so loop
        // enough hits to guarantee at least one lands on a sample point.
        for _ in 0..17 {
            run_cached(&cfg, uncached);
        }
        set_cache_verify(false);
        assert!(cache_stats().verified > v0, "at least one hit was verified");
        set_cache_dir(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "cache verify FAILED")]
    fn verify_mode_panics_on_corrupted_float_bits() {
        let _g = lock();
        let dir = tmpdir("verify-corrupt");
        set_cache_dir(Some(dir.clone()));
        let cfg = small_cfg(13);
        run_cached(&cfg, uncached);
        // Flip one hex digit of the stored efficiency bits: still decodes,
        // but is no longer what a fresh run produces.
        let key = cell_key(&cfg);
        let path = dir.join(format!("{key}.run"));
        let text = fs::read_to_string(&path).unwrap();
        let line = text.lines().find(|l| l.starts_with("efficiency ")).unwrap().to_string();
        let digit = line.chars().last().unwrap();
        let flipped = if digit == '0' { '1' } else { '0' };
        let mut corrupt = line.clone();
        corrupt.pop();
        corrupt.push(flipped);
        fs::write(&path, text.replace(&line, &corrupt)).unwrap();
        set_cache_verify(true);
        // Drive the global hit counter onto a sample point.
        let out = std::panic::catch_unwind(|| {
            for _ in 0..17 {
                run_cached(&cfg, uncached);
            }
        });
        set_cache_verify(false);
        set_cache_dir(None);
        let _ = fs::remove_dir_all(&dir);
        match out {
            Err(p) => std::panic::resume_unwind(p),
            Ok(()) => panic!("corrupted entry was never caught"),
        }
    }
}
