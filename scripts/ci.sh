#!/usr/bin/env bash
# Tier-1 gate + smoke repro. Fully offline; no network access needed.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release
cargo test -q --workspace

# Bench targets compile and run in quick mode (2 iterations, no report).
AEOLUS_BENCH_ITERS=2 AEOLUS_BENCH_WARMUP=1 cargo bench -p aeolus-bench --bench engine

# One end-to-end experiment at smoke scale, exercising the parallel fan-out.
cargo run --release -q -p aeolus-experiments --bin repro -- fig1 --scale smoke --jobs 2

echo "ci: OK"
