//! Engine microbenchmarks: the discrete-event core (timing wheel vs the
//! reference binary heap) and the queue disciplines the paper's switch
//! behavior is built on. Plain `main` under the in-tree harness
//! (`cargo bench --bench engine`).

use std::hint::black_box;

use aeolus_bench::harness::Suite;
use aeolus_bench::{
    batched_dequeue, btreemap_churn, flowmap_churn, incast_sim_events, incast_sim_events_recorded,
    route_lookup, timer_stream_events,
};
use aeolus_sim::event::SchedulerKind;
use aeolus_sim::{
    DropTailQueue, FlowId, NodeId, Packet, PacketPool, PacketRef, Poll, PriorityBank, QueueDisc,
    RangeSet, Rate, RedEcnQueue, TrafficClass, TrimmingQueue, XPassQueue, CREDIT_BYTES,
};

fn pkt(pool: &mut PacketPool, seq: u64, class: TrafficClass) -> PacketRef {
    pool.insert(Packet::data(FlowId(seq % 64), NodeId(0), NodeId(1), seq, 1460, class, 1 << 20))
}

fn drain<Q: QueueDisc + ?Sized>(q: &mut Q, pool: &mut PacketPool) -> u64 {
    let mut n = 0;
    while let Poll::Ready(r) = q.poll(pool, 0) {
        pool.free(r);
        n += 1;
    }
    n
}

fn bench_event_queue(suite: &mut Suite) {
    const N: u64 = 200_000;
    suite.bench("timer_stream_200k_wheel", || {
        timer_stream_events(SchedulerKind::TimingWheel, N)
    });
    suite.bench("timer_stream_200k_heap", || {
        timer_stream_events(SchedulerKind::BinaryHeap, N)
    });
    suite.bench("incast_sim_wheel", || incast_sim_events(SchedulerKind::TimingWheel, 30_000, 3));
    suite.bench("incast_sim_heap", || incast_sim_events(SchedulerKind::BinaryHeap, 30_000, 3));
    suite.bench("incast_sim_wheel_recorded", || {
        incast_sim_events_recorded(SchedulerKind::TimingWheel, 30_000, 3)
    });
    suite.bench("rangeset_insert_1k_shuffled", || {
        let mut rs = RangeSet::new();
        for i in 0..1_000u64 {
            let start = ((i * 7919) % 1000) * 1460;
            rs.insert(start, start + 1460);
        }
        black_box(rs.covered())
    });
}

fn free_dropped(pool: &mut PacketPool, outcome: aeolus_sim::EnqueueOutcome) {
    if let aeolus_sim::EnqueueOutcome::Dropped { pkt, .. } = outcome {
        pool.free(pkt);
    }
}

fn bench_queues(suite: &mut Suite) {
    let mut pool = PacketPool::new();
    suite.bench("droptail_1k", || {
        let mut q = DropTailQueue::new(1 << 30);
        for i in 0..1000 {
            let r = pkt(&mut pool, i, TrafficClass::Scheduled);
            let out = q.enqueue(r, &mut pool, 0);
            free_dropped(&mut pool, out);
        }
        drain(&mut q, &mut pool)
    });
    let mut pool = PacketPool::new();
    suite.bench("red_selective_1k_mixed", || {
        let mut q = RedEcnQueue::new(6_000, 200_000);
        for i in 0..1000 {
            let class =
                if i % 2 == 0 { TrafficClass::Unscheduled } else { TrafficClass::Scheduled };
            let r = pkt(&mut pool, i, class);
            let out = q.enqueue(r, &mut pool, 0);
            free_dropped(&mut pool, out);
        }
        drain(&mut q, &mut pool)
    });
    let mut pool = PacketPool::new();
    suite.bench("priority_bank_1k", || {
        let mut q = PriorityBank::new(8, 1 << 30);
        for i in 0..1000u64 {
            let r = pkt(&mut pool, i, TrafficClass::Scheduled);
            pool.get_mut(r).priority = (i % 8) as u8;
            let out = q.enqueue(r, &mut pool, 0);
            free_dropped(&mut pool, out);
        }
        drain(&mut q, &mut pool)
    });
    let mut pool = PacketPool::new();
    suite.bench("trimming_1k", || {
        let mut q = TrimmingQueue::new(8, 1 << 30);
        for i in 0..1000 {
            let r = pkt(&mut pool, i, TrafficClass::Unscheduled);
            let out = q.enqueue(r, &mut pool, 0);
            free_dropped(&mut pool, out);
        }
        drain(&mut q, &mut pool)
    });
    let mut pool = PacketPool::new();
    suite.bench("xpass_credit_shaper_1k", || {
        let mut q = XPassQueue::new(
            Box::new(DropTailQueue::new(1 << 30)),
            Rate::gbps(100),
            1500,
            CREDIT_BYTES,
            8,
        );
        for i in 0..1000 {
            let r = pkt(&mut pool, i, TrafficClass::Scheduled);
            let out = q.enqueue(r, &mut pool, 0);
            free_dropped(&mut pool, out);
        }
        drain(&mut q, &mut pool)
    });
}

fn bench_hotpath(suite: &mut Suite) {
    suite.bench("flowmap_churn_1m", || flowmap_churn(1_000_000, 64));
    suite.bench("btreemap_churn_1m", || btreemap_churn(1_000_000, 64));
    suite.bench("route_lookup_1m", || route_lookup(1_000_000));
    suite.bench("batched_dequeue_1m", || batched_dequeue(1_000_000));
}

fn main() {
    let mut engine = Suite::new("engine");
    bench_event_queue(&mut engine);
    let mut hotpath = Suite::new("hotpath");
    bench_hotpath(&mut hotpath);
    let mut queues = Suite::new("queues");
    bench_queues(&mut queues);

    let wheel = engine.sample("timer_stream_200k_wheel").unwrap().units_per_sec();
    let heap = engine.sample("timer_stream_200k_heap").unwrap().units_per_sec();
    println!("\ntimer stream speedup (wheel vs heap): {:.2}x", wheel / heap);
    let wheel = engine.sample("incast_sim_wheel").unwrap().units_per_sec();
    let heap = engine.sample("incast_sim_heap").unwrap().units_per_sec();
    println!("incast sim speedup (wheel vs heap):   {:.2}x", wheel / heap);
    let slab = hotpath.sample("flowmap_churn_1m").unwrap().units_per_sec();
    let btree = hotpath.sample("btreemap_churn_1m").unwrap().units_per_sec();
    println!("flow state speedup (slab vs btree):   {:.2}x", slab / btree);
}
