//! Behavioral tests of protocol internals observable end-to-end: credit
//! ramping, SRPT ordering, path spraying, selective-dropping bounds and
//! oracle non-interference.

use aeolus_sim::topology::LinkParams;
use aeolus_sim::units::{ms, us, Rate, PS_PER_SEC};
use aeolus_sim::{FlowDesc, FlowId, NodeId};
use aeolus_transport::{Scheme, SchemeBuilder, SchemeParams, TopoSpec};

fn testbed() -> TopoSpec {
    TopoSpec::SingleSwitch { hosts: 8, link: LinkParams::uniform(Rate::gbps(10), us(3)) }
}

#[test]
fn expresspass_credit_loop_ramps_to_near_line_rate() {
    let mut h = SchemeBuilder::new(Scheme::ExpressPass).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let size = 4_000_000u64;
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size, start: 0 }]);
    assert!(h.run(ms(100)));
    let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
    let achieved_bps = size as f64 * 8.0 / (fct as f64 / PS_PER_SEC as f64);
    assert!(
        achieved_bps > 0.7 * 10e9,
        "4MB flow achieved only {:.2} Gbps — the feedback loop failed to ramp",
        achieved_bps / 1e9
    );
}

#[test]
fn expresspass_shares_a_bottleneck_roughly_fairly() {
    let mut h = SchemeBuilder::new(Scheme::ExpressPass).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    // Two equal elephants into the same receiver, started together.
    h.schedule(&[
        FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 2_000_000, start: 0 },
        FlowDesc { id: FlowId(2), src: hosts[2], dst: hosts[0], size: 2_000_000, start: 0 },
    ]);
    assert!(h.run(ms(200)));
    let f1 = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap() as f64;
    let f2 = h.metrics().flow(FlowId(2)).unwrap().fct().unwrap() as f64;
    let ratio = f1.max(f2) / f1.min(f2);
    assert!(ratio < 1.5, "FCT ratio {ratio:.2} — credit scheduler is unfair");
}

#[test]
fn homa_srpt_prefers_short_messages() {
    let mut h = SchemeBuilder::new(Scheme::HomaAeolus).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    // A big message starts first; a small one arrives while it transfers.
    h.schedule(&[
        FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 2_000_000, start: 0 },
        FlowDesc { id: FlowId(2), src: hosts[2], dst: hosts[0], size: 50_000, start: us(100) },
    ]);
    assert!(h.run(ms(200)));
    let big = h.metrics().flow(FlowId(1)).unwrap().completed_at.unwrap();
    let small = h.metrics().flow(FlowId(2)).unwrap().completed_at.unwrap();
    assert!(
        small < big,
        "SRPT violated: the 50KB message ({small}) must finish before the 2MB one ({big})"
    );
}

#[test]
fn ndp_sprays_across_all_spines() {
    let spec = TopoSpec::LeafSpine {
        spines: 4,
        leaves: 2,
        hosts_per_leaf: 2,
        link: LinkParams::uniform(Rate::gbps(100), us(1)),
    };
    let mut h = SchemeBuilder::new(Scheme::Ndp).topology(spec).build();
    let hosts = h.hosts().to_vec();
    // Cross-leaf elephant: its packets must spread over all 4 spines.
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[0], dst: hosts[3], size: 1_000_000, start: 0 }]);
    assert!(h.run(ms(100)));
    // Spines are the first 4 switches; count data bytes through each.
    let mut used = 0;
    for s in 0..4 {
        let sw = h.topo.switches[s];
        let total: u64 =
            (0..h.topo.net.node(sw).ports.len()).map(|p| {
                h.topo.net.port(sw, aeolus_sim::PortId(p as u16)).stats.payload_tx
            }).sum();
        if total > 0 {
            used += 1;
        }
    }
    assert_eq!(used, 4, "per-packet spraying must exercise every spine");
}

#[test]
fn ecmp_pins_expresspass_flows_to_one_path() {
    let spec = TopoSpec::LeafSpine {
        spines: 4,
        leaves: 2,
        hosts_per_leaf: 2,
        link: LinkParams::uniform(Rate::gbps(100), us(1)),
    };
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).topology(spec).build();
    let hosts = h.hosts().to_vec();
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[0], dst: hosts[3], size: 1_000_000, start: 0 }]);
    assert!(h.run(ms(100)));
    let mut spines_carrying_data = 0;
    for s in 0..4 {
        let sw = h.topo.switches[s];
        let total: u64 =
            (0..h.topo.net.node(sw).ports.len()).map(|p| {
                h.topo.net.port(sw, aeolus_sim::PortId(p as u16)).stats.payload_tx
            }).sum();
        if total > 0 {
            spines_carrying_data += 1;
        }
    }
    assert_eq!(spines_carrying_data, 1, "per-flow ECMP must pin the flow to one spine");
}

#[test]
fn selective_dropping_bounds_the_bottleneck_queue() {
    // Under a synchronized EP+Aeolus incast, the bottleneck queue must stay
    // near the 6KB threshold: unscheduled can't pile up, and scheduled
    // packets are credit-paced.
    let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..7)
        .map(|i| FlowDesc {
            id: FlowId(i + 1),
            src: hosts[i as usize + 1],
            dst: hosts[0],
            size: 100_000,
            start: 0,
        })
        .collect();
    h.schedule(&flows);
    assert!(h.run(ms(2000)));
    let (sw, port) = h.topo.host_ingress[0];
    let max_q = h.topo.net.port(sw, port).stats.qlen_max;
    assert!(
        max_q < 30_000,
        "bottleneck queue peaked at {max_q} B — selective dropping failed to bound it"
    );
}

#[test]
fn oracle_burst_does_not_disturb_a_scheduled_victim() {
    // Data-path non-interference (the SPF property): a victim flow and the
    // oracle bursts share only a *middle* link — different receivers, so the
    // victim's credit stream is untouched. Its FCT must be (nearly)
    // identical with and without the bursts.
    let spec = || TopoSpec::LeafSpine {
        spines: 1,
        leaves: 2,
        hosts_per_leaf: 4,
        link: LinkParams::uniform(Rate::gbps(10), us(1)),
    };
    let run = |with_burst: bool| {
        let mut h = SchemeBuilder::new(Scheme::ExpressPassOracle).topology(spec()).build();
        let hosts = h.hosts().to_vec();
        // Victim crosses leaf0 -> spine -> leaf1.
        let mut flows =
            vec![FlowDesc { id: FlowId(1), src: hosts[0], dst: hosts[4], size: 500_000, start: 0 }];
        if with_burst {
            // Bursts cross the same uplink to *different* receivers.
            for i in 0..3u64 {
                flows.push(FlowDesc {
                    id: FlowId(10 + i),
                    src: hosts[1 + i as usize],
                    dst: hosts[5 + i as usize],
                    size: 15_000,
                    start: us(50),
                });
            }
        }
        h.schedule(&flows);
        assert!(h.run(ms(2000)));
        h.metrics().flow(FlowId(1)).unwrap().fct().unwrap()
    };
    let clean = run(false);
    let disturbed = run(true);
    let inflation = disturbed as f64 / clean as f64;
    // Strict priority precludes queueing behind unscheduled packets; the
    // residual inflation is the burst flows' *scheduled retransmissions*
    // legitimately sharing the uplink (45 KB over a ~500 KB victim), plus
    // credit-path sharing — far below what a blind burst would inflict.
    assert!(
        inflation < 1.35,
        "oracle bursts inflated the victim FCT by {:.1}% — data-path interference detected",
        (inflation - 1.0) * 100.0
    );
}

#[test]
fn homa_learns_size_from_probe_when_whole_burst_is_lost() {
    // Force every unscheduled packet of one flow to drop by pre-filling the
    // bottleneck with other bursts; the probe (protected) still delivers the
    // demand and the flow completes via grants.
    let mut h = SchemeBuilder::new(Scheme::HomaAeolus).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let mut flows: Vec<FlowDesc> = (0..6)
        .map(|i| FlowDesc {
            id: FlowId(i + 1),
            src: hosts[i as usize + 1],
            dst: hosts[0],
            size: 21_000,
            start: 0,
        })
        .collect();
    // The victim starts a hair later: queue already ≥ threshold.
    flows.push(FlowDesc { id: FlowId(7), src: hosts[7], dst: hosts[0], size: 21_000, start: us(2) });
    h.schedule(&flows);
    assert!(h.run(ms(2000)), "all flows must complete even with heavy burst loss");
    assert_eq!(h.metrics().completed_count(), 7);
}

#[test]
fn node_id_sanity() {
    // Guard against host/switch id mixups in topology handles.
    let h = SchemeBuilder::new(Scheme::Ndp).topology(testbed()).build();
    for &id in h.hosts() {
        assert!(h.topo.net.node(id).is_host());
    }
    for &id in &h.topo.switches {
        assert!(!h.topo.net.node(id).is_host());
    }
    let _ = NodeId(0);
}

#[test]
fn dctcp_delivers_and_converges() {
    // Single elephant should approach line rate after slow start.
    let mut h = SchemeBuilder::new(Scheme::Dctcp { rto: ms(10) }).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let size = 2_000_000u64;
    h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size, start: 0 }]);
    assert!(h.run(ms(200)));
    let fct = h.metrics().flow(FlowId(1)).unwrap().fct().unwrap();
    let achieved = size as f64 * 8.0 / (fct as f64 / PS_PER_SEC as f64);
    assert!(achieved > 5e9, "DCTCP elephant achieved only {:.2} Gbps", achieved / 1e9);
}

#[test]
fn dctcp_needs_more_rtts_than_aeolus_for_sub_bdp_flows() {
    // The intro's argument: a reactive transport slow-starts, so a message
    // larger than the initial window needs several RTTs, while an Aeolus
    // burst finishes it in roughly one.
    let fct = |scheme| {
        let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 21_000, start: 0 }]);
        assert!(h.run(ms(100)));
        h.metrics().flow(FlowId(1)).unwrap().fct().unwrap()
    };
    let dctcp = fct(Scheme::Dctcp { rto: ms(10) });
    let aeolus = fct(Scheme::ExpressPassAeolus);
    assert!(
        aeolus < dctcp,
        "EP+Aeolus ({aeolus}) must finish a ~BDP message faster than DCTCP ({dctcp})"
    );
}

#[test]
fn dctcp_survives_incast_with_ecn_backoff() {
    let mut h = SchemeBuilder::new(Scheme::Dctcp { rto: ms(10) }).topology(testbed()).build();
    let hosts = h.hosts().to_vec();
    let flows: Vec<FlowDesc> = (0..7)
        .map(|i| FlowDesc {
            id: FlowId(i + 1),
            src: hosts[i as usize + 1],
            dst: hosts[0],
            size: 200_000,
            start: 0,
        })
        .collect();
    h.schedule(&flows);
    assert!(h.run(ms(2000)), "{}/{}", h.metrics().completed_count(), h.metrics().flow_count());
    // The synchronized slow-start overshoot may momentarily fill the buffer
    // (DCTCP's well-known incast weakness), but ECN backoff must keep the
    // *average* occupancy near the marking threshold, far below the cap.
    let (sw, port) = h.topo.host_ingress[0];
    let stats = &h.topo.net.port(sw, port).stats;
    let avg = stats.avg_qlen(h.topo.net.now());
    assert!(avg < 80_000.0, "DCTCP average queue {avg:.0} B — ECN backoff ineffective");
}

#[test]
fn wred_and_red_ecn_switch_paths_agree_end_to_end() {
    // §4.1 offers two deployments of selective dropping; a full incast run
    // must produce identical FCTs under either.
    let run = |use_wred: bool| {
        let mut params = SchemeParams::new(0);
        params.use_wred = use_wred;
        let mut h = SchemeBuilder::new(Scheme::ExpressPassAeolus).params(params).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        let flows: Vec<FlowDesc> = (0..7)
            .map(|i| FlowDesc {
                id: FlowId(i + 1),
                src: hosts[i as usize + 1],
                dst: hosts[0],
                size: 80_000,
                start: 0,
            })
            .collect();
        h.schedule(&flows);
        assert!(h.run(ms(2000)));
        let mut fcts: Vec<(u64, u64)> =
            h.metrics().flows().map(|r| (r.desc.id.0, r.fct().unwrap())).collect();
        fcts.sort_unstable();
        fcts
    };
    assert_eq!(run(false), run(true), "WRED and RED/ECN must be byte-for-byte equivalent");
}

#[test]
fn recovery_survives_random_packet_corruption() {
    // Fault injection: 0.5% of all packets (any class, control included)
    // silently vanish at switch egress. Every scheme's backstop machinery
    // must still deliver every flow.
    for scheme in [
        Scheme::ExpressPassAeolus,
        Scheme::HomaAeolus,
        Scheme::NdpAeolus,
        Scheme::PHostAeolus,
        Scheme::Homa { rto: ms(10) },
        Scheme::Ndp,
    ] {
        let mut params = SchemeParams::new(0);
        params.fault_loss_prob = 0.005;
        let mut h = SchemeBuilder::new(scheme).params(params).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        let flows: Vec<FlowDesc> = (0..5)
            .map(|i| FlowDesc {
                id: FlowId(i + 1),
                src: hosts[i as usize + 1],
                dst: hosts[0],
                size: 150_000,
                start: i * us(20),
            })
            .collect();
        h.schedule(&flows);
        assert!(
            h.run(ms(30_000)),
            "{}: {}/{} flows survived corruption",
            scheme.name(),
            h.metrics().completed_count(),
            h.metrics().flow_count()
        );
        for r in h.metrics().flows() {
            assert_eq!(r.delivered, r.desc.size, "{}", scheme.name());
        }
    }
}

#[test]
fn fastpass_arbiter_schedules_conflict_free_and_aeolus_fixes_first_rtt() {
    // A 5:1 incast under arbiter scheduling: zero queue growth beyond a
    // couple of in-flight packets at the receiver downlink, every flow
    // delivered. With Aeolus, sub-BDP messages beat the arbiter round trip.
    let run = |scheme: Scheme, size: u64| {
        let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        let flows: Vec<FlowDesc> = (0..5)
            .map(|i| FlowDesc {
                id: FlowId(i + 1),
                src: hosts[i as usize + 1],
                dst: hosts[0],
                size,
                start: 0,
            })
            .collect();
        h.schedule(&flows);
        assert!(
            h.run(ms(2000)),
            "{}: {}/{}",
            scheme.name(),
            h.metrics().completed_count(),
            h.metrics().flow_count()
        );
        let (sw, port) = h.topo.host_ingress[0];
        let max_q = h.topo.net.port(sw, port).stats.qlen_max;
        let mean_fct = h
            .metrics()
            .flows()
            .map(|r| r.fct().unwrap())
            .sum::<u64>() as f64
            / 5e6; // µs
        (max_q, mean_fct)
    };
    // Plain Fastpass: scheduled slots keep the downlink queue tiny even
    // under incast (the zero-queue property).
    let (q_plain, fct_plain) = run(Scheme::Fastpass, 200_000);
    assert!(q_plain < 20_000, "Fastpass downlink queue peaked at {q_plain} B");
    let _ = fct_plain;

    // Aeolus' win is the first RTT when spare bandwidth exists: a single
    // sub-BDP message finishes before the arbiter round trip completes.
    let single = |scheme: Scheme| {
        let mut h = SchemeBuilder::new(scheme).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        h.schedule(&[FlowDesc { id: FlowId(1), src: hosts[1], dst: hosts[0], size: 12_000, start: 0 }]);
        assert!(h.run(ms(100)));
        h.metrics().flow(FlowId(1)).unwrap().fct().unwrap()
    };
    let plain = single(Scheme::Fastpass);
    let aeolus = single(Scheme::FastpassAeolus);
    assert!(
        aeolus < plain,
        "Fastpass+Aeolus single small message ({aeolus} ps) must beat plain ({plain} ps)"
    );
}

#[test]
fn fastpass_arbiter_host_is_reserved() {
    let h = SchemeBuilder::new(Scheme::FastpassAeolus).topology(testbed()).build();
    // The testbed has 8 hosts; one is reserved for the arbiter.
    assert_eq!(h.hosts().len(), 7);
    assert!(h.params.arbiter.is_some());
    assert!(!h.hosts().contains(&h.params.arbiter.unwrap()));
}

#[test]
fn homa_burst_priorities_follow_message_size() {
    // Homa's unscheduled packets carry size-derived priorities: a small
    // message's burst must ride a strictly higher priority (lower number)
    // than a large message's. Verified via the packet trace.
    let first_burst_prio = |size: u64| {
        let mut h = SchemeBuilder::new(Scheme::Homa { rto: ms(10) }).topology(testbed()).build();
        let hosts = h.hosts().to_vec();
        h.topo.net.trace_flow(FlowId(9));
        h.schedule(&[FlowDesc { id: FlowId(9), src: hosts[1], dst: hosts[0], size, start: 0 }]);
        assert!(h.run(ms(500)));
        h.topo
            .net
            .trace()
            .iter()
            .find(|ev| {
                matches!(ev.what, aeolus_sim::TraceKind::Transmit)
                    && ev.class == aeolus_sim::TrafficClass::Unscheduled
            })
            .map(|ev| ev.priority)
            .expect("burst packet in trace")
    };
    let p_small = first_burst_prio(2_000);
    let p_large = first_burst_prio(2_000_000);
    assert!(
        p_small < p_large,
        "small message burst prio {p_small} must beat large message's {p_large}"
    );
}
