//! One bench per paper *table*, same philosophy as `figures.rs`. Plain
//! `main` under the in-tree harness.

use aeolus_bench::harness::Suite;
use aeolus_bench::{bench_fabric, bench_many_to_one, bench_workload};
use aeolus_sim::units::{ms, us};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

fn table_benches(suite: &mut Suite) {
    // Table 1: the Homa recovery dilemma — eager Homa is the stress case.
    suite.bench("table1_eager_homa", || {
        bench_workload(Scheme::Homa { rto: us(20) }, bench_fabric(), Workload::CacheFollower, 20)
            as u64
    });
    // Table 2 is the workload-distribution table: bench the samplers.
    suite.bench("table2_workload_sampling", sampling::sample_all);
    // Table 3: Homa+Aeolus across workloads.
    suite.bench("table3_homa_aeolus", || {
        bench_workload(Scheme::HomaAeolus, bench_fabric(), Workload::DataMining, 20) as u64
    });
    // Table 4: the priority-queueing strawman.
    suite.bench("table4_prioqueue_strawman", || {
        bench_workload(
            Scheme::ExpressPassPrioQueue { rto: ms(10) },
            bench_fabric(),
            Workload::CacheFollower,
            20,
        ) as u64
    });
    // Table 5: shared-buffer incast.
    suite.bench("table5_shared_buffer_incast", || {
        bench_many_to_one(Scheme::ExpressPassAeolus, 20, 400_000) as u64
    });
}

/// Tiny helper module so the Table 2 bench has a deterministic kernel.
mod sampling {
    use aeolus_sim::SimRng;
    use aeolus_workloads::Workload;

    pub fn sample_all() -> u64 {
        let mut total = 0u64;
        let mut n = 0u64;
        for w in Workload::ALL {
            let d = w.dist();
            let mut rng = SimRng::seed_from_u64(7);
            for _ in 0..1000 {
                total = total.wrapping_add(d.sample(&mut rng));
                n += 1;
            }
        }
        std::hint::black_box(total);
        n
    }
}

fn main() {
    let mut suite = Suite::new("tables");
    table_benches(&mut suite);
}
