//! Figure 1 — the gap between existing proactive baselines and the ideal
//! pre-credit handling: (a) ExpressPass waits for credits, (b) Homa bursts
//! blindly; both lose badly against the oracle pre-credit scheme.

use aeolus_sim::units::ms;
use crate::compare::{small_flow_comparison, Comparison};
use crate::report::Report;
use crate::scale::Scale;
use crate::topos::{ep_fat_tree, homa_two_tier, FAT_TREE_OVERSUB};
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

/// Run both halves of Figure 1.
pub fn run(scale: Scale) -> Report {
    let mut r = small_flow_comparison(
        &Comparison {
            title: "Figure 1(a): waiting for credits vs ideal",
            schemes: &[Scheme::ExpressPass, Scheme::ExpressPassOracle],
            spec: ep_fat_tree(scale),
            workloads: &[Workload::CacheFollower],
            host_load: 0.4 / FAT_TREE_OVERSUB,
            flows: (60, 800, 4000),
            seed: 101,
        },
        scale,
    );
    let r2 = small_flow_comparison(
        &Comparison {
            title: "Figure 1(b): blind burst vs ideal",
            schemes: &[Scheme::Homa { rto: ms(10) }, Scheme::HomaOracle],
            spec: homa_two_tier(scale),
            workloads: &[Workload::CacheFollower],
            host_load: 0.54,
            flows: (60, 800, 4000),
            seed: 102,
        },
        scale,
    );
    r.sections.extend(r2.sections);
    r.note("(a): fat-tree at 40% core load; (b): two-tier at 54% load, 10ms RTO");
    r
}
