//! Figure 14 — NDP vs NDP+Aeolus FCT of 0–100 KB flows on the two-tier tree
//! at 40% load: Aeolus matches NDP without switch modifications.

use crate::compare::{small_flow_comparison, Comparison};
use crate::report::Report;
use crate::scale::Scale;
use crate::topos::homa_two_tier;
use aeolus_transport::Scheme;
use aeolus_workloads::Workload;

/// Run Figure 14.
pub fn run(scale: Scale) -> Report {
    let mut r = small_flow_comparison(
        &Comparison {
            title: "Figure 14",
            schemes: &[Scheme::Ndp, Scheme::NdpAeolus],
            spec: homa_two_tier(scale),
            workloads: &Workload::ALL,
            host_load: 0.4,
            flows: (60, 1000, 5000),
            seed: 1414,
        },
        scale,
    );
    r.note("paper: NDP+Aeolus achieves similar FCT as original NDP in all percentiles");
    r
}
