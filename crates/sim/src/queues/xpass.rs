//! ExpressPass port queue: an inner data discipline plus a rate-limited
//! credit queue.
//!
//! ExpressPass switches throttle *credit* packets on every egress port so
//! that the data packets the credits will induce on the reverse path exactly
//! fill that path: at most one credit per serialization time of one data MTU
//! plus one credit (84 B / (84 B + 1538 B) ≈ 5.5 % of capacity). Credits
//! arriving to a full credit queue are dropped — that loss is the signal the
//! ExpressPass feedback loop uses to tune per-flow credit rates.
//!
//! The data path is delegated to an inner [`QueueDisc`], so the same port
//! can run plain drop-tail (original ExpressPass), RED/ECN selective
//! dropping (ExpressPass+Aeolus) or a priority bank (the §5.5 strawman).

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::packet::PacketKind;
use crate::pool::{PacketPool, PacketRef};
use crate::units::{Rate, Time};

/// ExpressPass egress discipline: paced credit queue + inner data queue.
pub struct XPassQueue {
    data: Box<dyn QueueDisc>,
    credits: ByteFifo,
    /// Credit queue cap in packets (ExpressPass default: 8).
    credit_cap_pkts: usize,
    /// Minimum spacing between two credits leaving this port.
    credit_interval: Time,
    /// Earliest time the next credit may leave.
    next_credit_at: Time,
    /// Credits dropped at this port (feedback-loop signal, exposed to stats).
    pub credits_dropped: u64,
}

impl XPassQueue {
    /// Build for a port of rate `link`, pacing credits so induced data fills
    /// the forward path. `data_mtu_wire` is the wire size of a full data
    /// packet (payload + headers), `credit_size` of a credit packet. Data
    /// packets are handled by `data`.
    pub fn new(
        data: Box<dyn QueueDisc>,
        link: Rate,
        data_mtu_wire: u32,
        credit_size: u32,
        credit_cap_pkts: usize,
    ) -> XPassQueue {
        XPassQueue {
            data,
            credits: ByteFifo::new(),
            credit_cap_pkts,
            credit_interval: link.serialize((data_mtu_wire + credit_size) as u64),
            next_credit_at: 0,
            credits_dropped: 0,
        }
    }

    /// The enforced credit spacing (for tests).
    pub fn credit_interval(&self) -> Time {
        self.credit_interval
    }
}

impl QueueDisc for XPassQueue {
    fn enqueue(&mut self, pkt: PacketRef, pool: &mut PacketPool, now: Time) -> EnqueueOutcome {
        let p = pool.get(pkt);
        if p.kind == PacketKind::Credit {
            let sz = p.size;
            if self.credits.len() >= self.credit_cap_pkts {
                self.credits_dropped += 1;
                return EnqueueOutcome::Dropped { reason: DropReason::CreditOverflow, pkt };
            }
            self.credits.push(pkt, sz);
            return EnqueueOutcome::Queued;
        }
        self.data.enqueue(pkt, pool, now)
    }

    fn poll(&mut self, pool: &mut PacketPool, now: Time) -> Poll {
        if !self.credits.is_empty() && now >= self.next_credit_at {
            let (pkt, _) = self.credits.pop().expect("non-empty credit queue");
            self.next_credit_at = now + self.credit_interval;
            return Poll::Ready(pkt);
        }
        match self.data.poll(pool, now) {
            Poll::Ready(pkt) => Poll::Ready(pkt),
            Poll::NotBefore(t) => {
                if self.credits.is_empty() {
                    Poll::NotBefore(t)
                } else {
                    Poll::NotBefore(t.min(self.next_credit_at))
                }
            }
            Poll::Empty => {
                if self.credits.is_empty() {
                    Poll::Empty
                } else {
                    Poll::NotBefore(self.next_credit_at)
                }
            }
        }
    }

    fn bytes(&self) -> u64 {
        self.data.bytes() + self.credits.bytes()
    }

    fn pkts(&self) -> usize {
        self.data.pkts() + self.credits.len()
    }

    fn bands(&self, out: &mut Vec<(&'static str, u64)>) {
        self.data.bands(out);
        out.push(("credit", self.credits.bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::data_ref;
    use super::super::{DropTailQueue, RedEcnQueue};
    use super::*;
    use crate::packet::{FlowId, NodeId, Packet, TrafficClass, CREDIT_BYTES};

    fn credit(pool: &mut PacketPool, seq: u64) -> PacketRef {
        let mut p = Packet::control(FlowId(1), NodeId(0), NodeId(1), seq, PacketKind::Credit);
        p.size = CREDIT_BYTES;
        pool.insert(p)
    }

    fn queue() -> XPassQueue {
        XPassQueue::new(
            Box::new(DropTailQueue::new(200_000)),
            Rate::gbps(100),
            1540,
            CREDIT_BYTES,
            8,
        )
    }

    #[test]
    fn credit_interval_matches_mtu_plus_credit() {
        let q = queue();
        // (1540 + 84) * 8 bits at 10 ps/bit = 129.92 ns.
        assert_eq!(q.credit_interval(), Rate::gbps(100).serialize(1624));
    }

    #[test]
    fn credits_paced_one_per_interval() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        let c0 = credit(&mut pool, 0);
        q.enqueue(c0, &mut pool, 0);
        let c1 = credit(&mut pool, 1);
        q.enqueue(c1, &mut pool, 0);
        match q.poll(&mut pool, 0) {
            Poll::Ready(p) => assert_eq!(pool.get(p).seq, 0),
            other => panic!("unexpected {other:?}"),
        }
        // Second credit gated until the interval elapses.
        let gate = match q.poll(&mut pool, 0) {
            Poll::NotBefore(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(gate, q.credit_interval());
        assert!(matches!(q.poll(&mut pool, gate), Poll::Ready(_)));
    }

    #[test]
    fn data_fills_gaps_between_credits() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        let c0 = credit(&mut pool, 0);
        q.enqueue(c0, &mut pool, 0);
        let c1 = credit(&mut pool, 1);
        q.enqueue(c1, &mut pool, 0);
        let d = data_ref(&mut pool, TrafficClass::Scheduled, 0);
        q.enqueue(d, &mut pool, 0);
        assert!(
            matches!(q.poll(&mut pool, 0), Poll::Ready(p) if pool.get(p).kind == PacketKind::Credit)
        );
        // Credit gated, so data goes out.
        assert!(
            matches!(q.poll(&mut pool, 0), Poll::Ready(p) if pool.get(p).kind == PacketKind::Data)
        );
        assert!(matches!(q.poll(&mut pool, 0), Poll::NotBefore(_)));
    }

    #[test]
    fn credit_overflow_drops_and_counts() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        for i in 0..8 {
            let c = credit(&mut pool, i);
            assert!(matches!(q.enqueue(c, &mut pool, 0), EnqueueOutcome::Queued));
        }
        let c = credit(&mut pool, 8);
        match q.enqueue(c, &mut pool, 0) {
            EnqueueOutcome::Dropped { reason: DropReason::CreditOverflow, pkt } => {
                assert_eq!(pool.get(pkt).seq, 8)
            }
            other => panic!("expected credit drop, got {other:?}"),
        }
        assert_eq!(q.credits_dropped, 1);
    }

    #[test]
    fn inner_discipline_decides_data_fate() {
        // RED/ECN inner queue: unscheduled dropped above 6 KB — the
        // ExpressPass+Aeolus port in one object.
        let mut pool = PacketPool::new();
        let mut q = XPassQueue::new(
            Box::new(RedEcnQueue::new(6_000, 200_000)),
            Rate::gbps(100),
            1540,
            CREDIT_BYTES,
            8,
        );
        for i in 0..4 {
            let r = data_ref(&mut pool, TrafficClass::Unscheduled, i);
            assert!(matches!(q.enqueue(r, &mut pool, 0), EnqueueOutcome::Queued));
        }
        let r = data_ref(&mut pool, TrafficClass::Unscheduled, 4);
        assert!(matches!(
            q.enqueue(r, &mut pool, 0),
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. }
        ));
        let s = data_ref(&mut pool, TrafficClass::Scheduled, 5);
        assert!(matches!(q.enqueue(s, &mut pool, 0), EnqueueOutcome::QueuedMarked));
    }

    #[test]
    fn empty_queue_reports_empty() {
        let mut pool = PacketPool::new();
        let mut q = queue();
        assert!(matches!(q.poll(&mut pool, 0), Poll::Empty));
    }

    #[test]
    fn conforms_to_oracle_ledger_under_seeded_churn() {
        for seed in 0..8 {
            crate::queues::testutil::oracle_audit(
                || {
                    Box::new(XPassQueue::new(
                        Box::new(DropTailQueue::new(8_000)),
                        Rate::gbps(10),
                        1_500,
                        84,
                        4,
                    ))
                },
                seed,
                600,
            );
        }
    }
}
