//! Open-loop Poisson flow arrivals at a target network load.
//!
//! Following the evaluation methodology of ExpressPass/Homa/NDP (and this
//! paper): flows arrive as a Poisson process whose rate is chosen so the
//! aggregate offered traffic equals `load` × the aggregate host-link
//! capacity; source and destination hosts are chosen uniformly at random
//! (distinct).

use aeolus_sim::rng::SimRng;
use aeolus_sim::units::PS_PER_SEC;
use aeolus_sim::{FlowDesc, FlowId, NodeId, Rate, Time};

use crate::dists::EmpiricalDist;

/// Configuration of a Poisson workload.
#[derive(Debug, Clone)]
pub struct PoissonConfig {
    /// Target offered load in (0, 1], as a fraction of aggregate host
    /// capacity.
    pub load: f64,
    /// Host link rate.
    pub host_rate: Rate,
    /// Number of flows to generate.
    pub flows: usize,
    /// RNG seed.
    pub seed: u64,
    /// First flow id to assign (ids are consecutive).
    pub first_id: u64,
    /// Arrivals start at this time.
    pub start: Time,
}

/// Generate `cfg.flows` Poisson-arriving flows among `hosts`, sized by `dist`.
pub fn poisson_flows(
    cfg: &PoissonConfig,
    hosts: &[NodeId],
    dist: &EmpiricalDist,
) -> Vec<FlowDesc> {
    assert!(hosts.len() >= 2, "need at least two hosts");
    assert!(cfg.load > 0.0 && cfg.load <= 1.5, "implausible load {}", cfg.load);
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    // Aggregate arrival rate in flows/second such that
    //   lambda * mean_size_bytes * 8 = load * n_hosts * rate_bps.
    let lambda =
        cfg.load * hosts.len() as f64 * cfg.host_rate.bps() as f64 / (8.0 * dist.mean());
    let mean_gap_ps = PS_PER_SEC as f64 / lambda;
    let mut t = cfg.start as f64;
    let mut out = Vec::with_capacity(cfg.flows);
    for i in 0..cfg.flows {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.next_f64().max(f64::EPSILON);
        t += -u.ln() * mean_gap_ps;
        let src = hosts[rng.index(hosts.len())];
        let dst = loop {
            let d = hosts[rng.index(hosts.len())];
            if d != src {
                break d;
            }
        };
        out.push(FlowDesc {
            id: FlowId(cfg.first_id + i as u64),
            src,
            dst,
            size: dist.sample(&mut rng),
            start: t as Time,
        });
    }
    out
}

/// The offered load actually realized by a flow list over its span — sanity
/// check used by tests and experiment logs.
pub fn realized_load(flows: &[FlowDesc], hosts: usize, host_rate: Rate) -> f64 {
    if flows.len() < 2 {
        return 0.0;
    }
    let bytes: u64 = flows.iter().map(|f| f.size).sum();
    // Min/max over starts, not first/last: callers (the fuzzer's generator,
    // hand-written specs) don't guarantee the list is sorted by start, and
    // `last - first` underflows unsigned `Time` on any unsorted input.
    let first = flows.iter().map(|f| f.start).min().unwrap();
    let last = flows.iter().map(|f| f.start).max().unwrap();
    let span = last - first;
    if span == 0 {
        return f64::INFINITY;
    }
    (bytes as f64 * 8.0) / (hosts as f64 * host_rate.bps() as f64 * span as f64 / PS_PER_SEC as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dists::Workload;
    use aeolus_sim::units::PS_PER_SEC;

    fn hosts(n: usize) -> Vec<NodeId> {
        (0..n).map(|i| NodeId(i as u32)).collect()
    }

    #[test]
    fn realized_load_tracks_target() {
        let dist = Workload::WebServer.dist();
        let cfg = PoissonConfig {
            load: 0.4,
            host_rate: Rate::gbps(10),
            flows: 20_000,
            seed: 11,
            first_id: 0,
            start: 0,
        };
        let flows = poisson_flows(&cfg, &hosts(16), &dist);
        let rho = realized_load(&flows, 16, Rate::gbps(10));
        assert!((rho - 0.4).abs() < 0.05, "realized load {rho}");
    }

    #[test]
    fn arrivals_are_sorted_and_ids_consecutive() {
        let dist = Workload::WebSearch.dist();
        let cfg = PoissonConfig {
            load: 0.6,
            host_rate: Rate::gbps(100),
            flows: 1000,
            seed: 3,
            first_id: 100,
            start: 50,
        };
        let flows = poisson_flows(&cfg, &hosts(8), &dist);
        assert_eq!(flows.len(), 1000);
        for (i, w) in flows.windows(2).enumerate() {
            assert!(w[0].start <= w[1].start, "unsorted at {i}");
        }
        assert_eq!(flows[0].id, FlowId(100));
        assert_eq!(flows[999].id, FlowId(1099));
        assert!(flows[0].start >= 50);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn realized_load_accepts_unsorted_flow_lists() {
        // A flow list not sorted by start (`last.start < first.start`) used
        // to underflow the unsigned `Time` subtraction and panic. The load
        // must only depend on the set of flows, not their order.
        let flow = |id: u64, start: Time, size: u64| FlowDesc {
            id: FlowId(id),
            src: NodeId(0),
            dst: NodeId(1),
            size,
            start,
        };
        let sorted = vec![flow(1, 0, 30_000), flow(2, 500_000, 10_000), flow(3, 1_000_000, 20_000)];
        let mut reversed = sorted.clone();
        reversed.reverse();
        let rho_sorted = realized_load(&sorted, 4, Rate::gbps(10));
        let rho_reversed = realized_load(&reversed, 4, Rate::gbps(10));
        assert!(rho_sorted.is_finite() && rho_sorted > 0.0, "load {rho_sorted}");
        assert_eq!(rho_sorted, rho_reversed, "order must not matter");
        // Degenerate spans keep their documented behavior.
        assert_eq!(realized_load(&sorted[..1], 4, Rate::gbps(10)), 0.0);
        let same_start = vec![flow(1, 7, 100), flow(2, 7, 100)];
        assert_eq!(realized_load(&same_start, 4, Rate::gbps(10)), f64::INFINITY);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dist = Workload::CacheFollower.dist();
        let cfg = PoissonConfig {
            load: 0.4,
            host_rate: Rate::gbps(100),
            flows: 100,
            seed: 42,
            first_id: 0,
            start: 0,
        };
        let a = poisson_flows(&cfg, &hosts(4), &dist);
        let b = poisson_flows(&cfg, &hosts(4), &dist);
        assert_eq!(a, b);
    }

    #[test]
    fn higher_load_means_denser_arrivals() {
        let dist = Workload::WebServer.dist();
        let mk = |load| {
            let cfg = PoissonConfig {
                load,
                host_rate: Rate::gbps(10),
                flows: 5000,
                seed: 9,
                first_id: 0,
                start: 0,
            };
            poisson_flows(&cfg, &hosts(8), &dist).last().unwrap().start
        };
        let span_low = mk(0.2);
        let span_high = mk(0.8);
        assert!(
            span_low > 3 * span_high,
            "0.2 load span {span_low} should be ~4x the 0.8 load span {span_high}"
        );
        let _ = PS_PER_SEC;
    }
}
