//! Receive-side bookkeeping shared by every transport: duplicate-suppressed
//! delivery into the run metrics, message-size learning and ACK ranges.

use aeolus_core::PreCreditReceiver;
use aeolus_sim::{Ctx, Packet, TrafficClass};

/// Result of booking one data packet.
#[derive(Debug, Clone, Copy)]
pub struct BookVerdict {
    /// Payload bytes not seen before.
    pub new_bytes: u64,
    /// Whether this packet completed the message.
    pub completed: bool,
    /// The byte range this packet covered (`None` for empty packets), to be
    /// echoed in an ACK if the protocol wants one.
    pub acked_range: Option<(u64, u64)>,
}

/// Per-flow receive book: wraps the Aeolus receiver state and feeds unique
/// bytes into [`aeolus_sim::Metrics`].
#[derive(Debug, Default)]
pub struct RecvBook {
    /// Underlying Aeolus receiver state (dedupe, size, probe tracking).
    pub core: PreCreditReceiver,
}

impl RecvBook {
    /// Fresh book.
    pub fn new() -> RecvBook {
        RecvBook { core: PreCreditReceiver::new() }
    }

    /// Note the message size from any header carrying it.
    pub fn learn_size(&mut self, size: u64) {
        self.core.learn_size(size);
    }

    /// Whether the full message has been received.
    pub fn is_complete(&self) -> bool {
        self.core.is_complete()
    }

    /// Unique bytes received.
    pub fn received(&self) -> u64 {
        self.core.received_bytes()
    }

    /// Bytes still missing, if the size is known.
    pub fn remaining(&self) -> Option<u64> {
        self.core.remaining()
    }

    /// Book a data packet: dedupe, deliver new bytes to metrics, report the
    /// ACKable range.
    pub fn on_data(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) -> BookVerdict {
        debug_assert!(pkt.is_data());
        let unscheduled = pkt.class == TrafficClass::Unscheduled;
        let v = self.core.on_data(pkt.seq, pkt.payload, unscheduled, pkt.flow_size);
        if v.new_bytes > 0 {
            ctx.metrics.deliver(pkt.flow, v.new_bytes, ctx.now);
        }
        BookVerdict {
            new_bytes: v.new_bytes,
            completed: v.completed,
            acked_range: if pkt.payload > 0 {
                Some((pkt.seq, pkt.seq + pkt.payload as u64))
            } else {
                None
            },
        }
    }
}
