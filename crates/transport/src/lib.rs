#![warn(missing_docs)]
//! # aeolus-transport — proactive datacenter transports
//!
//! Full implementations of the three proactive transports the Aeolus paper
//! evaluates — ExpressPass (credit-scheduled), Homa (priority/grant-driven)
//! and NDP (trim-and-pull) — each integrable with the Aeolus building block
//! from `aeolus-core`, plus the §2 oracle ("hypothetical") variants and the
//! §5.5 priority-queueing strawman.
//!
//! Use [`Scheme`] to obtain matched (queue discipline, routing policy,
//! endpoint) triples; mixing them across schemes is a configuration error
//! the paper's evaluation never performs.

pub mod builder;
pub mod common;
pub mod corpus;
pub mod dctcp;
pub mod harness;
pub mod expresspass;
pub mod fastpass;
pub mod fuzz;
pub mod homa;
pub mod ndp;
pub mod phost;
pub mod receiver_table;
pub mod registry;

pub use builder::SchemeBuilder;
pub use common::{BaseConfig, FirstRttMode, Tombstones};
pub use corpus::{
    mutate, run_campaign, CampaignConfig, CampaignFailure, CampaignOutcome, Corpus, Signature,
};
pub use dctcp::{DctcpConfig, DctcpEndpoint};
pub use harness::{DegradationReport, FlowOutcome, Harness, StuckFlow, TopoSpec, WatchdogReport};
pub use expresspass::{XPassConfig, XPassEndpoint};
pub use fastpass::{ArbiterEndpoint, FastpassConfig, FastpassEndpoint};
pub use fuzz::{fuzz, shrink, CheckedRun, FlowSpec, FuzzReport, RunSignals, Scenario};
pub use homa::{HomaConfig, HomaEndpoint};
pub use ndp::{NdpConfig, NdpEndpoint};
pub use phost::{PHostConfig, PHostEndpoint};
pub use receiver_table::{BookVerdict, RecvBook};
pub use registry::{ParseSchemeError, Scheme, SchemeParams};
