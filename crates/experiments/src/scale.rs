//! Run-scale knob.
//!
//! The paper's simulations run hundreds of thousands of flows on 64–192-host
//! topologies. Every experiment here reproduces the *paper-shaped* topology
//! at all scales; the knob controls how many flows are simulated (the cost
//! driver), trading statistical smoothness for wall-clock time.

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: seconds; used by unit tests and Criterion benches.
    Smoke,
    /// Default: a few minutes for the full suite; the qualitative shapes
    /// (who wins, crossovers) are stable at this scale.
    Quick,
    /// Closest to the paper's flow counts; slow.
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Pick a flow count by scale.
    pub fn flows(self, smoke: usize, quick: usize, full: usize) -> usize {
        match self {
            Scale::Smoke => smoke,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Pick an arbitrary count (rounds, fan-in sweep points, …) by scale.
    pub fn count(self, smoke: usize, quick: usize, full: usize) -> usize {
        self.flows(smoke, quick, full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn selection_by_scale() {
        assert_eq!(Scale::Smoke.flows(1, 2, 3), 1);
        assert_eq!(Scale::Quick.flows(1, 2, 3), 2);
        assert_eq!(Scale::Full.flows(1, 2, 3), 3);
    }
}
