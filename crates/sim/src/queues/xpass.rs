//! ExpressPass port queue: an inner data discipline plus a rate-limited
//! credit queue.
//!
//! ExpressPass switches throttle *credit* packets on every egress port so
//! that the data packets the credits will induce on the reverse path exactly
//! fill that path: at most one credit per serialization time of one data MTU
//! plus one credit (84 B / (84 B + 1538 B) ≈ 5.5 % of capacity). Credits
//! arriving to a full credit queue are dropped — that loss is the signal the
//! ExpressPass feedback loop uses to tune per-flow credit rates.
//!
//! The data path is delegated to an inner [`QueueDisc`], so the same port
//! can run plain drop-tail (original ExpressPass), RED/ECN selective
//! dropping (ExpressPass+Aeolus) or a priority bank (the §5.5 strawman).

use super::{ByteFifo, DropReason, EnqueueOutcome, Poll, QueueDisc};
use crate::packet::{Packet, PacketKind};
use crate::units::{Rate, Time};

/// ExpressPass egress discipline: paced credit queue + inner data queue.
pub struct XPassQueue {
    data: Box<dyn QueueDisc>,
    credits: ByteFifo,
    /// Credit queue cap in packets (ExpressPass default: 8).
    credit_cap_pkts: usize,
    /// Minimum spacing between two credits leaving this port.
    credit_interval: Time,
    /// Earliest time the next credit may leave.
    next_credit_at: Time,
    /// Credits dropped at this port (feedback-loop signal, exposed to stats).
    pub credits_dropped: u64,
}

impl XPassQueue {
    /// Build for a port of rate `link`, pacing credits so induced data fills
    /// the forward path. `data_mtu_wire` is the wire size of a full data
    /// packet (payload + headers), `credit_size` of a credit packet. Data
    /// packets are handled by `data`.
    pub fn new(
        data: Box<dyn QueueDisc>,
        link: Rate,
        data_mtu_wire: u32,
        credit_size: u32,
        credit_cap_pkts: usize,
    ) -> XPassQueue {
        XPassQueue {
            data,
            credits: ByteFifo::new(),
            credit_cap_pkts,
            credit_interval: link.serialize((data_mtu_wire + credit_size) as u64),
            next_credit_at: 0,
            credits_dropped: 0,
        }
    }

    /// The enforced credit spacing (for tests).
    pub fn credit_interval(&self) -> Time {
        self.credit_interval
    }
}

impl QueueDisc for XPassQueue {
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueOutcome {
        if pkt.kind == PacketKind::Credit {
            if self.credits.len() >= self.credit_cap_pkts {
                self.credits_dropped += 1;
                return EnqueueOutcome::Dropped {
                    reason: DropReason::CreditOverflow,
                    pkt: Box::new(pkt),
                };
            }
            self.credits.push(pkt);
            return EnqueueOutcome::Queued;
        }
        self.data.enqueue(pkt, now)
    }

    fn poll(&mut self, now: Time) -> Poll {
        if !self.credits.is_empty() && now >= self.next_credit_at {
            let pkt = self.credits.pop().expect("non-empty credit queue");
            self.next_credit_at = now + self.credit_interval;
            return Poll::Ready(pkt);
        }
        match self.data.poll(now) {
            Poll::Ready(pkt) => Poll::Ready(pkt),
            Poll::NotBefore(t) => {
                if self.credits.is_empty() {
                    Poll::NotBefore(t)
                } else {
                    Poll::NotBefore(t.min(self.next_credit_at))
                }
            }
            Poll::Empty => {
                if self.credits.is_empty() {
                    Poll::Empty
                } else {
                    Poll::NotBefore(self.next_credit_at)
                }
            }
        }
    }

    fn bytes(&self) -> u64 {
        self.data.bytes() + self.credits.bytes()
    }

    fn pkts(&self) -> usize {
        self.data.pkts() + self.credits.len()
    }

    fn bands(&self, out: &mut Vec<(&'static str, u64)>) {
        self.data.bands(out);
        out.push(("credit", self.credits.bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::data_pkt;
    use super::super::{DropTailQueue, RedEcnQueue};
    use super::*;
    use crate::packet::{FlowId, NodeId, TrafficClass, CREDIT_BYTES};

    fn credit(seq: u64) -> Packet {
        let mut p = Packet::control(FlowId(1), NodeId(0), NodeId(1), seq, PacketKind::Credit);
        p.size = CREDIT_BYTES;
        p
    }

    fn queue() -> XPassQueue {
        XPassQueue::new(
            Box::new(DropTailQueue::new(200_000)),
            Rate::gbps(100),
            1540,
            CREDIT_BYTES,
            8,
        )
    }

    #[test]
    fn credit_interval_matches_mtu_plus_credit() {
        let q = queue();
        // (1540 + 84) * 8 bits at 10 ps/bit = 129.92 ns.
        assert_eq!(q.credit_interval(), Rate::gbps(100).serialize(1624));
    }

    #[test]
    fn credits_paced_one_per_interval() {
        let mut q = queue();
        q.enqueue(credit(0), 0);
        q.enqueue(credit(1), 0);
        match q.poll(0) {
            Poll::Ready(p) => assert_eq!(p.seq, 0),
            other => panic!("unexpected {other:?}"),
        }
        // Second credit gated until the interval elapses.
        let gate = match q.poll(0) {
            Poll::NotBefore(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(gate, q.credit_interval());
        assert!(matches!(q.poll(gate), Poll::Ready(_)));
    }

    #[test]
    fn data_fills_gaps_between_credits() {
        let mut q = queue();
        q.enqueue(credit(0), 0);
        q.enqueue(credit(1), 0);
        q.enqueue(data_pkt(TrafficClass::Scheduled, 0), 0);
        assert!(matches!(q.poll(0), Poll::Ready(p) if p.kind == PacketKind::Credit));
        // Credit gated, so data goes out.
        assert!(matches!(q.poll(0), Poll::Ready(p) if p.kind == PacketKind::Data));
        assert!(matches!(q.poll(0), Poll::NotBefore(_)));
    }

    #[test]
    fn credit_overflow_drops_and_counts() {
        let mut q = queue();
        for i in 0..8 {
            assert!(matches!(q.enqueue(credit(i), 0), EnqueueOutcome::Queued));
        }
        match q.enqueue(credit(8), 0) {
            EnqueueOutcome::Dropped { reason: DropReason::CreditOverflow, pkt } => {
                assert_eq!(pkt.seq, 8)
            }
            other => panic!("expected credit drop, got {other:?}"),
        }
        assert_eq!(q.credits_dropped, 1);
    }

    #[test]
    fn inner_discipline_decides_data_fate() {
        // RED/ECN inner queue: unscheduled dropped above 6 KB — the
        // ExpressPass+Aeolus port in one object.
        let mut q = XPassQueue::new(
            Box::new(RedEcnQueue::new(6_000, 200_000)),
            Rate::gbps(100),
            1540,
            CREDIT_BYTES,
            8,
        );
        for i in 0..4 {
            assert!(matches!(
                q.enqueue(data_pkt(TrafficClass::Unscheduled, i), 0),
                EnqueueOutcome::Queued
            ));
        }
        assert!(matches!(
            q.enqueue(data_pkt(TrafficClass::Unscheduled, 4), 0),
            EnqueueOutcome::Dropped { reason: DropReason::SelectiveDrop, .. }
        ));
        assert!(matches!(
            q.enqueue(data_pkt(TrafficClass::Scheduled, 5), 0),
            EnqueueOutcome::QueuedMarked
        ));
    }

    #[test]
    fn empty_queue_reports_empty() {
        let mut q = queue();
        assert!(matches!(q.poll(0), Poll::Empty));
    }
}
